#include "system/system.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/serial.h"

namespace avcp::system {

namespace {

perception::DataUniverse make_universe(const core::MultiRegionGame& game,
                                       std::size_t items_per_sensor,
                                       std::size_t vehicles_per_region,
                                       Rng& rng) {
  if (items_per_sensor == 0) items_per_sensor = vehicles_per_region;
  // Sensor privacy weights proportional to the per-decision privacy of the
  // singleton decisions, recovering the paper's camera > lidar > radar
  // sensitivity ordering from whatever tables the game carries.
  const auto& lattice = game.lattice();
  std::vector<double> sensor_privacy(lattice.num_sensors(), 0.0);
  for (std::size_t s = 0; s < lattice.num_sensors(); ++s) {
    const core::DecisionId singleton =
        lattice.decision_of(lattice.sensor_bit(s));
    sensor_privacy[s] = std::max(1e-3, game.config().privacy[singleton]);
  }
  return perception::DataUniverse::synthetic(lattice.num_sensors(),
                                             items_per_sensor, sensor_privacy,
                                             rng);
}

// Stream tags for derive_seed: one per randomized round stage, so the
// (round, region) streams of different stages never collide.
constexpr std::uint64_t kExchangeStream = 0xB1;
constexpr std::uint64_t kInterStream = 0xB2;
constexpr std::uint64_t kReviseStream = 0xB3;

}  // namespace

CooperativePerceptionSystem::CooperativePerceptionSystem(
    const core::MultiRegionGame& game, SystemParams params)
    : CooperativePerceptionSystem(game, params, nullptr) {}

CooperativePerceptionSystem::CooperativePerceptionSystem(
    const core::MultiRegionGame& game, SystemParams params,
    const faults::FaultModel* faults,
    const byzantine::AdversaryModel* adversary,
    byzantine::ReportPipeline* pipeline)
    : CooperativePerceptionSystem(game, params, faults) {
  adversary_ = adversary != nullptr && adversary->active() ? adversary : nullptr;
  pipeline_ = pipeline;
}

CooperativePerceptionSystem::CooperativePerceptionSystem(
    const core::MultiRegionGame& game, SystemParams params,
    const faults::FaultModel* faults, byzantine::ReportPipeline* pipeline,
    byzantine::AdaptiveAdversary* adaptive)
    : CooperativePerceptionSystem(game, params, faults) {
  adaptive_ = adaptive != nullptr && adaptive->active() ? adaptive : nullptr;
  pipeline_ = pipeline;
}

CooperativePerceptionSystem::CooperativePerceptionSystem(
    const core::MultiRegionGame& game, SystemParams params,
    const faults::FaultModel* faults)
    : game_(game),
      params_(params),
      faults_(faults != nullptr && faults->active() ? faults : nullptr),
      rng_(params.seed),
      pool_(ThreadPool::clamped_lanes(params.num_threads)),
      universe_(make_universe(game, params.items_per_sensor,
                              params.vehicles_per_region, rng_)) {
  AVCP_EXPECT(params_.vehicles_per_region >= 2);
  AVCP_EXPECT(params_.cells_per_region >= 1);
  AVCP_EXPECT(params_.vehicles_per_region >= 2 * params_.cells_per_region);
  AVCP_EXPECT(params_.collect_fraction > 0.0 && params_.collect_fraction <= 1.0);
  AVCP_EXPECT(params_.desire_fraction > 0.0 && params_.desire_fraction <= 1.0);
  AVCP_EXPECT(params_.revision_rate >= 0.0 && params_.revision_rate <= 1.0);
  AVCP_EXPECT(params_.imitation_scale > 0.0);

  decisions_.assign(game.num_regions(),
                    std::vector<core::DecisionId>(params_.vehicles_per_region, 0));
  planes_.reserve(game.num_regions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    planes_.emplace_back(game.lattice(), universe_, game.config().access,
                         rng_());
  }
  x_.assign(game.num_regions(), 0.5);
  realized_.assign(game.num_regions(),
                   std::vector<double>(game.num_decisions(), 0.0));
  region_ws_.resize(game.num_regions());
  claims_ = decisions_;
  behavior_ = decisions_;
  // Fleet shapes are fixed at construction, so the cost-balanced chunk plan
  // (vehicles × classes per region) is computed once. The plan depends only
  // on fleet shapes, never on thread count.
  region_cost_.resize(game.num_regions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    region_cost_[i] = static_cast<double>(decisions_[i].size()) *
                      static_cast<double>(game.num_decisions());
  }
  chunk_plan_ = balanced_chunks(region_cost_, 4 * pool_.size());

  // Degraded-network transport: one directed link per neighbour edge,
  // added dst-major in neighbour order so a receiver's canonical consume
  // order is exactly the synchronous path's neighbour order.
  if (params_.inter_region_exchange && params_.net.active()) {
    link_model_.emplace(params_.net);
    channel_.emplace(*link_model_,
                     static_cast<std::uint32_t>(game.num_regions()));
    out_links_.resize(game.num_regions());
    for (core::RegionId i = 0; i < game.num_regions(); ++i) {
      for (const auto& [j, gamma] : game.region(i).neighbors) {
        const std::uint32_t link = channel_->add_link(j, i);
        AVCP_ENSURE(link == link_gamma_.size());
        link_gamma_.push_back(gamma);
        out_links_[j].push_back(link);
      }
    }
    rings_.resize(game.num_regions());
    for (std::vector<PayloadSlot>& ring : rings_) {
      ring.resize(params_.net.ring_slots());
    }
  }
}

core::GameState CooperativePerceptionSystem::empirical_state() const {
  core::GameState state;
  state.p.assign(game_.num_regions(),
                 std::vector<double>(game_.num_decisions(), 0.0));
  for (core::RegionId i = 0; i < game_.num_regions(); ++i) {
    for (const core::DecisionId d : decisions_[i]) {
      state.p[i][d] += 1.0;
    }
    for (double& v : state.p[i]) {
      v /= static_cast<double>(decisions_[i].size());
    }
  }
  return state;
}

core::GameState CooperativePerceptionSystem::honest_state() const {
  if (adversary_ == nullptr && adaptive_ == nullptr) return empirical_state();
  core::GameState state;
  state.p.assign(game_.num_regions(),
                 std::vector<double>(game_.num_decisions(), 0.0));
  for (core::RegionId i = 0; i < game_.num_regions(); ++i) {
    double honest = 0.0;
    for (std::size_t v = 0; v < decisions_[i].size(); ++v) {
      if (adversary_ != nullptr && adversary_->ever_attacks(i, v)) continue;
      if (adaptive_ != nullptr && adaptive_->ever_attacks(i, v)) continue;
      state.p[i][decisions_[i][v]] += 1.0;
      honest += 1.0;
    }
    if (honest == 0.0) {
      for (const core::DecisionId d : decisions_[i]) state.p[i][d] += 1.0;
      honest = static_cast<double>(decisions_[i].size());
    }
    for (double& value : state.p[i]) value /= honest;
  }
  return state;
}

void CooperativePerceptionSystem::init_from(const core::GameState& state) {
  AVCP_EXPECT(state.p.size() == game_.num_regions());
  for (core::RegionId i = 0; i < game_.num_regions(); ++i) {
    core::check_distribution(state.p[i]);
    for (auto& decision : decisions_[i]) {
      decision = static_cast<core::DecisionId>(rng_.weighted_index(state.p[i]));
    }
  }
}

RoundReport CooperativePerceptionSystem::run_round(
    core::Controller& controller) {
  const std::size_t num_regions = game_.num_regions();
  const bool byz =
      adversary_ != nullptr || adaptive_ != nullptr || pipeline_ != nullptr;
  RoundReport report;
  report.byzantine.active = byz;

  // Freeze the adaptive adversary's per-round plan before any parallel
  // stage: attacking() is then a const lookup for the whole round.
  if (adaptive_ != nullptr) adaptive_->begin_round(round_);

  // --- S1: edge servers report, the cloud computes the ratios. -----------
  // claims_[i][v]: the decision vehicle v *declares* this round (falsified
  // for attacking vehicles) — it governs lattice access and what peers see.
  // behavior_[i][v]: the decision it *executes* in the data plane. Both
  // mirror decisions_ on the clean path, and nothing here consumes RNG.
  // Members (not locals): the round loop reuses their capacity.
  for (core::RegionId i = 0; i < num_regions; ++i) {
    claims_[i].assign(decisions_[i].begin(), decisions_[i].end());
    behavior_[i].assign(decisions_[i].begin(), decisions_[i].end());
  }
  std::vector<std::vector<byzantine::VehicleReport>> reports;
  if (byz) {
    reports.resize(num_regions);
    for (core::RegionId i = 0; i < num_regions; ++i) {
      // Honest telemetry is exact: the region's true beta / gamma_self and
      // the fleet headcount as density. Liars therefore stand out against
      // a collapsed (MAD ~ 0) honest spread.
      const double beta = game_.region(i).beta;
      const double gamma = game_.region(i).gamma_self;
      const double density = static_cast<double>(decisions_[i].size());
      reports[i].resize(decisions_[i].size());
      for (std::size_t v = 0; v < decisions_[i].size(); ++v) {
        byzantine::VehicleReport r{decisions_[i][v], beta, gamma, density};
        if (adversary_ != nullptr) {
          behavior_[i][v] = adversary_->behavior_decision(
              round_, i, v, decisions_[i][v], game_.lattice());
          r = adversary_->falsify(round_, i, v, r);
        }
        if (adaptive_ != nullptr) {
          behavior_[i][v] = adaptive_->behavior_decision(
              round_, i, v, behavior_[i][v], game_.lattice());
          r = adaptive_->falsify(round_, i, v, r);
        }
        claims_[i][v] = r.decision;
        reports[i][v] = r;
      }
    }
  }

  core::GameState observed;
  if (pipeline_ != nullptr) {
    observed.p.resize(num_regions);
    report.byzantine.beta.resize(num_regions, 0.0);
    report.byzantine.gamma.resize(num_regions, 0.0);
    report.byzantine.density.resize(num_regions, 0.0);
    report.byzantine.reports_used.resize(num_regions, 0);
    report.byzantine.outliers_rejected.resize(num_regions, 0);
    report.byzantine.quarantined.resize(num_regions, 0);
    // Robust aggregation is region-local (the pipeline's contract), so the
    // regions fan out; results land in per-region slots and are folded on
    // this thread in region order.
    std::vector<byzantine::RegionObservation> observations(num_regions);
    pool_.parallel_for(0, num_regions, [&](std::size_t i) {
      observations[i] = pipeline_->aggregate(
          round_, static_cast<core::RegionId>(i), reports[i]);
    });
    for (core::RegionId i = 0; i < num_regions; ++i) {
      byzantine::RegionObservation& obs = observations[i];
      observed.p[i] = std::move(obs.p);
      report.byzantine.beta[i] = obs.beta;
      report.byzantine.gamma[i] = obs.gamma;
      report.byzantine.density[i] = obs.density;
      report.byzantine.reports_used[i] = obs.reports_used;
      report.byzantine.outliers_rejected[i] = obs.outliers_rejected;
      report.byzantine.quarantined[i] = obs.quarantined;
    }
  } else if (byz) {
    // Adversary without a pipeline: a trusting cloud folds the claims with
    // a plain mean (the vulnerable baseline).
    observed.p.assign(num_regions,
                      std::vector<double>(game_.num_decisions(), 0.0));
    for (core::RegionId i = 0; i < num_regions; ++i) {
      for (const core::DecisionId d : claims_[i]) observed.p[i][d] += 1.0;
      for (double& value : observed.p[i]) {
        value /= static_cast<double>(claims_[i].size());
      }
    }
  } else {
    observed = empirical_state();
  }
  if (byz) report.byzantine.observed = observed;
  x_ = controller.next_x(observed, x_);
  AVCP_ENSURE(x_.size() == game_.num_regions());

  const bool transport = channel_.has_value();
  report.net.active = transport;
  if (transport) {
    report.net.stale_by_region.assign(num_regions, 0);
    report.net.blind_by_region.assign(num_regions, 0);
  }

  report.x = x_;
  report.mean_utility.resize(game_.num_regions(), 0.0);
  report.mean_privacy.resize(game_.num_regions(), 0.0);
  report.exposed_privacy.resize(game_.num_regions(), 0.0);
  report.faults.uploads_lost_by_region.assign(game_.num_regions(), 0);
  report.faults.deliveries_lost_by_region.assign(game_.num_regions(), 0);
  report.faults.region_down.assign(game_.num_regions(), 0);
  for (core::RegionId i = 0; i < game_.num_regions(); ++i) {
    if (faults_ != nullptr && faults_->region_down(round_, i)) {
      report.faults.region_down[i] = 1;
      ++report.faults.regions_down;
      ++fault_counters_.region_outages;
    }
  }

  // --- S2: per edge server, run the data plane and measure fitness. ------
  // Each region is one task: it owns its plane (distinct RNG stream), its
  // hash-derived (round, region) sampling stream, and its slots of the
  // report — the only cross-region values, the fleet-wide loss totals, are
  // reduced after the join in region order.
  const std::size_t exchanges = std::max<std::size_t>(1, params_.exchanges_per_round);
  auto data_plane_stage = [&](std::size_t region_index) {
    const auto i = static_cast<core::RegionId>(region_index);
    Rng rng(derive_seed(params_.seed, {kExchangeStream, round_, region_index}));
    RegionWorkspace& ws = region_ws_[i];
    const std::size_t n = decisions_[i].size();

    // Realized fitness: beta-weighted measured utility minus measured
    // privacy cost, averaged over the round's repeated exchanges (§II: the
    // upload/distribute steps repeat several times before the next policy).
    // The realized privacy cost is the fraction of the vehicle's *own*
    // private-data mass it exposed — the scale-free analogue of Table II's
    // g_k (its expectation over random collections equals the normalised
    // g_k exactly), bounded in [0, 1] regardless of universe sparsity.
    const double beta = game_.region(i).beta;

    ws.fitness.assign(n, 0.0);
    // Privacy mass each vehicle actually uploaded this round (summed over
    // cells and exchanges) — the behavioural signal the pipeline audits.
    ws.upload_mass.assign(n, 0.0);
    // The round's roster: decisions/claims/revocations are fixed across
    // the round's exchanges; only the item scene is refilled per exchange.
    ws.fleet.clear();
    for (std::size_t v = 0; v < n; ++v) {
      if (byz) {
        ws.fleet.add(behavior_[i][v], claims_[i][v],
                     pipeline_ != nullptr && pipeline_->excluded(i, v));
      } else {
        ws.fleet.add(behavior_[i][v]);
      }
    }
    // Streaming sampler over the open set: the exact draw sequence of
    // sample_items (one Bernoulli per universe item ascending; one uniform
    // fallback when nothing got drawn).
    auto sample_into = [&](double fraction) {
      bool empty = true;
      for (perception::ItemId id = 0; id < universe_.size(); ++id) {
        if (rng.bernoulli(fraction)) {
          ws.fleet.push_item(id);
          empty = false;
        }
      }
      if (empty) {
        ws.fleet.push_item(static_cast<perception::ItemId>(rng.uniform_int(
            0, static_cast<std::int64_t>(universe_.size()) - 1)));
      }
    };
    const std::size_t cells = params_.cells_per_region;
    for (std::size_t e = 0; e < exchanges; ++e) {
      ws.fleet.reset_items();
      for (std::size_t v = 0; v < n; ++v) {
        ws.fleet.begin_desired(v);
        sample_into(params_.desire_fraction);
        ws.fleet.end_set();
      }
      if (params_.disjoint_collections) {
        // Deal each item to at most one vehicle (pairwise-disjoint
        // collections, the paper's Property 3.1(d) regime). With
        // n * collect_fraction >= 1 every item is observed by someone,
        // which is the realistic street scene. Record-then-scatter: the
        // draws run in ascending item order exactly as the AoS loop did;
        // grouping each owner's items afterwards keeps them ascending.
        const double fleet_coverage = std::min(
            1.0, params_.collect_fraction * static_cast<double>(n));
        ws.deal_item.clear();
        ws.deal_owner.clear();
        ws.owner_count.assign(n, 0);
        for (perception::ItemId id = 0; id < universe_.size(); ++id) {
          if (!rng.bernoulli(fleet_coverage)) continue;
          const auto owner = static_cast<std::uint32_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(n) - 1));
          ws.deal_item.push_back(id);
          ws.deal_owner.push_back(owner);
          ++ws.owner_count[owner];
        }
        ws.owner_fill.assign(n, 0);
        std::uint32_t start = 0;
        for (std::size_t v = 0; v < n; ++v) {
          ws.owner_fill[v] = start;
          start += ws.owner_count[v];
        }
        ws.deal_sorted.resize(ws.deal_item.size());
        for (std::size_t j = 0; j < ws.deal_item.size(); ++j) {
          ws.deal_sorted[ws.owner_fill[ws.deal_owner[j]]++] = ws.deal_item[j];
        }
        start = 0;
        for (std::size_t v = 0; v < n; ++v) {
          std::span<perception::ItemId> c =
              ws.fleet.alloc_collected(v, ws.owner_count[v]);
          std::copy_n(ws.deal_sorted.begin() + start, ws.owner_count[v],
                      c.begin());
          start += ws.owner_count[v];
        }
      } else {
        for (std::size_t v = 0; v < n; ++v) {
          ws.fleet.begin_collected(v);
          sample_into(params_.collect_fraction);
          ws.fleet.end_set();
        }
      }
      const perception::FleetView fleet_view = ws.fleet.view();
      // Edge-server outage (fault injection): the region's servers are
      // down, so no data exchange happens this round. Vehicles fall back
      // on their own perception — utility is measured on the collection
      // alone, nothing is uploaded (no privacy cost, no exposure).
      if (report.faults.region_down[i] != 0) {
        double util_sum = 0.0;
        for (std::size_t v = 0; v < n; ++v) {
          double own = 0.0;
          const std::span<const perception::ItemId> desired =
              fleet_view.desired_of(v);
          if (!desired.empty()) {
            own = perception::measured_utility(universe_,
                                               fleet_view.collected_of(v),
                                               desired);
          }
          util_sum += own;
          ws.fitness[v] += beta * own;
        }
        report.mean_utility[i] += util_sum / static_cast<double>(n);
        continue;
      }
      // Data exchange is scoped per Voronoi cell (Fig. 5): vehicles are
      // spread round-robin over this round's cells. A single cell runs on
      // the region fleet's view directly; with more cells each sub-fleet is
      // repacked into the persistent per-cell SoA.
      double util_sum = 0.0;
      double priv_sum = 0.0;
      double exposed_sum = 0.0;
      for (std::size_t c = 0; c < cells; ++c) {
        const bool whole = cells == 1;
        std::size_t cn = n;
        if (!whole) {
          ws.cell.clear();
          ws.cell_index.clear();
          for (std::size_t v = c; v < n; v += cells) {
            ws.cell.add(fleet_view, v);
            ws.cell_index.push_back(v);
          }
          cn = ws.cell.size();
          if (cn == 0) continue;
        }
        const perception::FleetView cell_view =
            whole ? fleet_view : ws.cell.view();
        // Resolve this cell's V2X link faults (pure hashes; the system RNG
        // stream is untouched, keeping the zero-fault path bit-identical).
        ws.mask.upload_lost.clear();
        ws.mask.delivery_lost.clear();
        if (faults_ != nullptr) {
          if (faults_->params().upload_loss_rate > 0.0) {
            ws.mask.upload_lost.resize(cn);
            for (std::size_t j = 0; j < cn; ++j) {
              const std::size_t v = whole ? j : ws.cell_index[j];
              ws.mask.upload_lost[j] =
                  faults_->upload_lost(round_, i, e, v) ? 1 : 0;
            }
          }
          if (faults_->params().delivery_loss_rate > 0.0) {
            ws.mask.delivery_lost.resize(cn * cn);
            for (std::size_t a = 0; a < cn; ++a) {
              const std::size_t va = whole ? a : ws.cell_index[a];
              for (std::size_t b = 0; b < cn; ++b) {
                const std::size_t vb = whole ? b : ws.cell_index[b];
                ws.mask.delivery_lost[a * cn + b] =
                    faults_->delivery_lost(round_, i, e, va, vb) ? 1 : 0;
              }
            }
          }
        }
        // Per-pair delivery-loss masks cannot be class-aggregated; such
        // cells fall back to the exact kernel for the round.
        const auto mode = ws.mask.delivery_lost.empty()
                              ? params_.data_plane_mode
                              : perception::DataPlaneMode::kPairwiseExact;
        planes_[i].run_round_into(cell_view, x_[i], ws.mask, no_server_items_,
                                  mode, ws.outcome);
        report.faults.uploads_lost_by_region[i] += ws.outcome.uploads_lost;
        report.faults.deliveries_lost_by_region[i] +=
            ws.outcome.deliveries_lost;
        exposed_sum += ws.outcome.exposed_privacy;
        for (std::size_t j = 0; j < cn; ++j) {
          const std::size_t v = whole ? j : ws.cell_index[j];
          util_sum += ws.outcome.utility[j];
          priv_sum += ws.outcome.privacy[j];
          ws.upload_mass[v] += ws.outcome.privacy[j];
          const double own_mass =
              universe_.privacy_weight(fleet_view.collected_of(v));
          const double exposed_fraction =
              own_mass > 0.0
                  ? ws.outcome.privacy[j] * universe_.total_privacy_weight() /
                        own_mass
                  : 0.0;
          ws.fitness[v] += beta * ws.outcome.utility[j] - exposed_fraction;
        }
      }
      report.mean_utility[i] += util_sum / static_cast<double>(n);
      report.mean_privacy[i] += priv_sum / static_cast<double>(n);
      report.exposed_privacy[i] += exposed_sum;
    }
    const double inv = 1.0 / static_cast<double>(exchanges);
    report.mean_utility[i] *= inv;
    report.mean_privacy[i] *= inv;
    report.exposed_privacy[i] *= inv;
    for (double& f : ws.fitness) f *= inv;
    // Behavioural audit: the pipeline compares each vehicle's realized
    // upload mass against its same-claim cohort. An outage round carries no
    // uploads for anyone, so there is nothing to audit.
    if (pipeline_ != nullptr && report.faults.region_down[i] == 0) {
      pipeline_->observe_uploads(i, ws.upload_mass);
    }
  };

  // --- Inter-region exchange (Fig. 5, Eq. (4)'s x_j * gamma_ji term) fused
  // with decision revision into one per-region task: vehicles of a
  // neighbouring region act as senders at the sender region's ratio; gamma
  // scales how many of them this region's vehicles meet. Receiver regions
  // are independent once every region's last_vehicles is frozen (the stage
  // barrier): task i reads neighbours' sender fleets, samples from its own
  // per-stream (round, region) streams, and writes only round_fitness[i],
  // decisions_[i], and realized_[i] — revision for region i reads nothing
  // another region's task writes, so the two phases fuse without a barrier
  // between them.
  auto exchange_revise_stage = [&](std::size_t region_index) {
    const auto i = static_cast<core::RegionId>(region_index);
    RegionWorkspace& ws = region_ws_[i];
    // A region whose edge servers are down this round neither relays
    // cross-region data to its fleet nor serves as a sender side — but its
    // fleet still revises on the own-perception fallback fitness.
    if (params_.inter_region_exchange && report.faults.region_down[i] == 0) {
      Rng rng(derive_seed(params_.seed, {kInterStream, round_, region_index}));
      const double beta = game_.region(i).beta;
      // ws.fleet still holds the last exchange's scene — frozen by the
      // stage barrier, so reading a neighbour's fleet is safe.
      const perception::FleetView recv_view = ws.fleet.view();
      auto run_senders = [&](const perception::FleetView& sender_view,
                             double x_sender, double gamma) {
        const std::size_t sn = sender_view.size();
        const auto k = static_cast<std::size_t>(std::min<double>(
            static_cast<double>(sn),
            std::round(gamma * static_cast<double>(sn))));
        if (k == 0) return;
        ws.senders.clear();
        for (std::size_t n = 0; n < k; ++n) {
          ws.senders.add(sender_view,
                         static_cast<std::size_t>(rng.uniform_int(
                             0, static_cast<std::int64_t>(sn) - 1)));
        }
        planes_[i].run_directional_into(ws.senders.view(), recv_view,
                                        x_sender, params_.data_plane_mode,
                                        ws.dout);
        for (std::size_t v = 0; v < recv_view.size(); ++v) {
          ws.fitness[v] += beta * ws.dout.marginal_utility[v];
        }
      };
      if (!transport) {
        for (const auto& [j, gamma] : game_.region(i).neighbors) {
          if (report.faults.region_down[j] != 0) continue;
          run_senders(region_ws_[j].fleet.view(), x_[j], gamma);
        }
      } else {
        // Transport path: consume from the payload rings in this round's
        // consume order. Region outages keep their fault-layer semantics
        // (a down sender is skipped, not substituted); link-level misses
        // fall back to the newest held payload within max_staleness, then
        // to local-only revision (blind link). With zero degradation every
        // link delivers its own-round payload in canonical order, so the
        // draws below replay the synchronous path bit for bit.
        for (const std::uint32_t link : channel_->consume_order(i)) {
          const core::RegionId j = channel_->link_src(link);
          if (report.faults.region_down[j] != 0) continue;
          const std::uint64_t p = channel_->consumable(link, round_);
          if (p == net::ExchangeChannel::kNothing) {
            ++report.net.blind_by_region[i];
            continue;
          }
          const PayloadSlot& slot = rings_[j][p % rings_[j].size()];
          AVCP_ENSURE(slot.round == p);
          if (p != round_) ++report.net.stale_by_region[i];
          run_senders(slot.fleet.view(), slot.x, link_gamma_[link]);
        }
      }
    }

    // --- Decision revision by realized fitness. ---------------------------
    Rng rng(derive_seed(params_.seed, {kReviseStream, round_, region_index}));
    auto& fleet = decisions_[i];
    const auto& fitness = ws.fitness;

    auto& per_decision = realized_[i];
    std::fill(per_decision.begin(), per_decision.end(), 0.0);
    ws.counts.assign(game_.num_decisions(), 0.0);
    for (std::size_t v = 0; v < fleet.size(); ++v) {
      per_decision[behavior_[i][v]] += fitness[v];
      ws.counts[behavior_[i][v]] += 1.0;
    }
    for (core::DecisionId d = 0; d < game_.num_decisions(); ++d) {
      if (ws.counts[d] > 0.0) per_decision[d] /= ws.counts[d];
    }

    // Revision is driven by what peers *display*: an honest vehicle that
    // imitates an attacker copies the attacker's claimed decision (it
    // cannot see the free-riding underneath). A vehicle attacking this
    // round never revises — its decision is strategy, not
    // fitness-following — but a designated vehicle outside its strategy's
    // scope (a colluder in a non-target region, a flip-flopper in an
    // honest half-cycle) behaves honestly, revision included.
    ws.before.assign(fleet.begin(), fleet.end());
    const auto& shown = claims_[i];
    for (std::size_t v = 0; v < fleet.size(); ++v) {
      if (adversary_ != nullptr && adversary_->attacking(round_, i, v)) {
        continue;
      }
      if (adaptive_ != nullptr && adaptive_->attacking(round_, i, v)) {
        continue;
      }
      if (!rng.bernoulli(params_.revision_rate)) continue;
      auto peer = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(fleet.size()) - 2));
      if (peer >= v) ++peer;
      if (shown[peer] == ws.before[v]) continue;
      const double gain = fitness[peer] - fitness[v];
      if (gain <= 0.0) continue;
      if (rng.bernoulli(std::min(1.0, params_.imitation_scale * gain))) {
        fleet[v] = shown[peer];
      }
    }
  };

  if (!transport) {
    // Both stages cross the pool boundary in ONE dispatch (single worker
    // wake; the inter-stage barrier is the claim word flipping over), with
    // chunks balanced by measured per-region cost — vehicles × classes —
    // rather than region count, so one heavy region does not serialise the
    // round (chunk_plan_ is fixed at construction with the fleet shapes).
    const ThreadPool::Stage round_stages[] = {
        {game_.num_regions(), IndexFnRef(data_plane_stage), 0, chunk_plan_},
        {game_.num_regions(), IndexFnRef(exchange_revise_stage), 0,
         chunk_plan_},
    };
    pool_.run_batch(round_stages);
  } else {
    // Transport-active rounds split the dispatch around a serial transport
    // step: publish every live region's scene into its payload ring, then
    // let the channel fate this round's messages. Running it on the
    // control thread (never a lane) keeps delivery order — and therefore
    // the trajectory — independent of thread count by construction.
    const ThreadPool::Stage stage_a[] = {
        {game_.num_regions(), IndexFnRef(data_plane_stage), 0, chunk_plan_},
    };
    pool_.run_batch(stage_a);
    const net::ExchangeChannel::Counters before = channel_->counters();
    for (core::RegionId j = 0; j < num_regions; ++j) {
      if (report.faults.region_down[j] != 0) continue;
      std::vector<PayloadSlot>& ring = rings_[j];
      PayloadSlot& slot = ring[round_ % ring.size()];
      slot.round = round_;
      slot.x = x_[j];
      slot.fleet = region_ws_[j].fleet;  // capacity reused after warm-up
      for (const std::uint32_t link : out_links_[j]) {
        channel_->publish(link, round_);
      }
    }
    channel_->resolve_round(round_);
    const net::ExchangeChannel::Counters& after = channel_->counters();
    report.net.sent = after.sent - before.sent;
    report.net.delivered = after.delivered - before.delivered;
    report.net.deduped = after.deduped - before.deduped;
    report.net.dropped = after.dropped - before.dropped;
    report.net.severed = after.severed - before.severed;
    report.net.delayed = after.delayed - before.delayed;
    report.net.duplicates = after.duplicates - before.duplicates;
    report.net.retries = after.retries - before.retries;
    report.net.expired = after.expired - before.expired;
    const ThreadPool::Stage stage_b[] = {
        {game_.num_regions(), IndexFnRef(exchange_revise_stage), 0,
         chunk_plan_},
    };
    pool_.run_batch(stage_b);
    for (core::RegionId i = 0; i < num_regions; ++i) {
      report.net.stale_links += report.net.stale_by_region[i];
      report.net.blind_links += report.net.blind_by_region[i];
    }
  }

  // Fleet-wide loss totals: reduced in region order after the join.
  for (core::RegionId i = 0; i < game_.num_regions(); ++i) {
    report.faults.uploads_lost += report.faults.uploads_lost_by_region[i];
    report.faults.deliveries_lost +=
        report.faults.deliveries_lost_by_region[i];
  }

  fault_counters_.uploads_lost += report.faults.uploads_lost;
  fault_counters_.deliveries_lost += report.faults.deliveries_lost;
  if (pipeline_ != nullptr) {
    pipeline_->end_round(round_);
    report.byzantine.total_quarantined =
        pipeline_->reputation().total_quarantined();
    report.byzantine.total_distrusted = pipeline_->trust().total_distrusted();
  }
  // Adaptive feedback: AFTER the defender's end_round, publish to each
  // designated attacker exactly what a vehicle could see — its own EWMA
  // score, whether it is excluded, and how many region mates are caught —
  // then advance the policies. Serial, in (region, vehicle) order: the
  // observation order is part of the determinism contract. Without a
  // pipeline (the trusting baseline) nothing is published and the machines
  // run open-loop on their own schedules.
  if (adaptive_ != nullptr) {
    if (pipeline_ != nullptr) {
      for (core::RegionId i = 0; i < num_regions; ++i) {
        const std::size_t caught = pipeline_->reputation().quarantined_in(i) +
                                   pipeline_->trust().distrusted_in(i);
        for (std::size_t v = 0; v < decisions_[i].size(); ++v) {
          if (!adaptive_->is_attacker(i, v)) continue;
          byzantine::AdversaryObservation obs;
          obs.own_score = pipeline_->reputation().score(i, v);
          obs.excluded = pipeline_->excluded(i, v);
          obs.region_quarantined = caught;
          adaptive_->observe(i, v, obs);
        }
      }
    }
    adaptive_->end_round(round_);
    report.byzantine.adaptive_dormant = adaptive_->total_dormant();
  }
  ++round_;

  report.state = empirical_state();
  return report;
}

std::size_t CooperativePerceptionSystem::run_until(
    core::Controller& controller, const core::DesiredFields& desired,
    double tol, std::size_t max_rounds) {
  for (std::size_t t = 0; t < max_rounds; ++t) {
    run_round(controller);
    if (desired.satisfied(empirical_state(), tol)) return t + 1;
  }
  return max_rounds;
}

std::span<const double> CooperativePerceptionSystem::realized_fitness(
    core::RegionId i) const {
  AVCP_EXPECT(i < realized_.size());
  return realized_[i];
}

void CooperativePerceptionSystem::save_state(Serializer& s) const {
  // Configuration fingerprint first, so a snapshot cannot silently restore
  // into a differently-shaped system (load_state rejects on mismatch).
  s.put_u64(game_.num_regions());
  s.put_u64(game_.num_decisions());
  s.put_u64(params_.vehicles_per_region);
  s.put_u64(params_.seed);
  s.put_u8(static_cast<std::uint8_t>(params_.data_plane_mode));
  s.put_bool(pipeline_ != nullptr);
  s.put_bool(adaptive_ != nullptr);
  s.put_bool(channel_.has_value());

  s.put_u64(round_);
  fault_counters_.save_state(s);
  rng_.save_state(s);
  for (const std::vector<core::DecisionId>& region : decisions_) {
    put_u32_vec(s, region);
  }
  put_f64_vec(s, x_);
  for (const std::vector<double>& region : realized_) {
    put_f64_vec(s, region);
  }
  for (const perception::EdgeServerDataPlane& plane : planes_) {
    plane.save_state(s);
  }
  if (pipeline_ != nullptr) pipeline_->save_state(s);
  if (adaptive_ != nullptr) adaptive_->save_state(s);
  // Transport section: the channel (in-flight messages, per-link freshness,
  // counters, behind a NetParams fingerprint) plus every sender's payload
  // ring — so a resume mid-partition replays delayed and retransmitted
  // deliveries byte-equal (empty ring slots carry only their sentinel).
  if (channel_.has_value()) {
    channel_->save_state(s);
    for (const std::vector<PayloadSlot>& ring : rings_) {
      for (const PayloadSlot& slot : ring) {
        s.put_u64(slot.round);
        if (slot.round == net::ExchangeChannel::kNothing) continue;
        s.put_f64(slot.x);
        slot.fleet.save_state(s);
      }
    }
  }
}

void CooperativePerceptionSystem::load_state(Deserializer& d) {
  Deserializer::check(d.get_u64() == game_.num_regions(),
                      "System snapshot: region count mismatch");
  Deserializer::check(d.get_u64() == game_.num_decisions(),
                      "System snapshot: decision count mismatch");
  Deserializer::check(d.get_u64() == params_.vehicles_per_region,
                      "System snapshot: fleet size mismatch");
  Deserializer::check(d.get_u64() == params_.seed,
                      "System snapshot: seed mismatch");
  Deserializer::check(
      d.get_u8() == static_cast<std::uint8_t>(params_.data_plane_mode),
      "System snapshot: data-plane mode mismatch");
  Deserializer::check(d.get_bool() == (pipeline_ != nullptr),
                      "System snapshot: report-pipeline wiring mismatch");
  Deserializer::check(d.get_bool() == (adaptive_ != nullptr),
                      "System snapshot: adaptive-adversary wiring mismatch");
  Deserializer::check(d.get_bool() == channel_.has_value(),
                      "System snapshot: net transport wiring mismatch");

  round_ = d.get_u64();
  fault_counters_.load_state(d);
  rng_.load_state(d);
  for (std::vector<core::DecisionId>& region : decisions_) {
    std::vector<core::DecisionId> row = get_u32_vec(d);
    Deserializer::check(row.size() == region.size(),
                        "System snapshot: decisions row size mismatch");
    for (const core::DecisionId decision : row) {
      Deserializer::check(decision < game_.num_decisions(),
                          "System snapshot: decision id out of range");
    }
    region = std::move(row);
  }
  std::vector<double> ratios = get_f64_vec(d);
  Deserializer::check(ratios.size() == x_.size(),
                      "System snapshot: ratio vector size mismatch");
  x_ = std::move(ratios);
  for (std::vector<double>& region : realized_) {
    std::vector<double> row = get_f64_vec(d);
    Deserializer::check(row.size() == region.size(),
                        "System snapshot: realized row size mismatch");
    region = std::move(row);
  }
  for (perception::EdgeServerDataPlane& plane : planes_) {
    plane.load_state(d);
  }
  if (pipeline_ != nullptr) pipeline_->load_state(d);
  if (adaptive_ != nullptr) adaptive_->load_state(d);
  if (channel_.has_value()) {
    channel_->load_state(d);
    for (std::vector<PayloadSlot>& ring : rings_) {
      for (PayloadSlot& slot : ring) {
        slot.round = d.get_u64();
        if (slot.round == net::ExchangeChannel::kNothing) {
          slot.x = 0.0;
          slot.fleet.clear();
          continue;
        }
        slot.x = d.get_f64();
        slot.fleet.load_state(d);
        Deserializer::check(slot.fleet.size() == params_.vehicles_per_region,
                            "System snapshot: payload fleet size mismatch");
      }
    }
  }
}

}  // namespace avcp::system
