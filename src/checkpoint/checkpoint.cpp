#include "checkpoint/checkpoint.h"

#include <cerrno>
#include <algorithm>
#include <chrono>
#include <fstream>
#include <string>
#include <system_error>
#include <thread>

#include "common/contracts.h"

namespace avcp::checkpoint {

namespace {

constexpr char kMagic[8] = {'A', 'V', 'C', 'P', 'C', 'K', 'P', 'T'};
// magic + version + round + section count; the u32 CRC follows.
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 4;

[[noreturn]] void fail(const std::string& what) {
  throw CheckpointError("checkpoint: " + what);
}

/// The current errno as an error_code; EIO when a stream failed without
/// setting errno (ofstream reports via badbit, not a code).
std::error_code errno_code() noexcept {
  return {errno != 0 ? errno : EIO, std::generic_category()};
}

}  // namespace

bool is_transient_fs_error(const std::error_code& ec) noexcept {
  if (!ec) return false;
  const std::error_condition cond = ec.default_error_condition();
  return cond == std::errc::interrupted ||
         cond == std::errc::resource_unavailable_try_again ||
         cond == std::errc::no_space_on_device ||
         cond == std::errc::device_or_resource_busy;
}

std::error_code retry_transient_fs(
    const std::function<std::error_code()>& op, const FsRetryPolicy& policy,
    const std::function<void(std::size_t)>& sleep) {
  AVCP_EXPECT(policy.attempts >= 1);
  std::size_t backoff = policy.backoff_initial_ms;
  std::error_code ec;
  for (std::size_t attempt = 0; attempt < policy.attempts; ++attempt) {
    ec = op();
    if (!ec || !is_transient_fs_error(ec)) return ec;
    if (attempt + 1 < policy.attempts) {
      if (sleep != nullptr) {
        sleep(backoff);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
      backoff *= policy.backoff_factor;
    }
  }
  return ec;
}

Serializer& CheckpointWriter::section(std::uint32_t id) {
  for (const auto& [existing, payload] : sections_) {
    AVCP_EXPECT(existing != id);  // section ids are unique within a file
  }
  sections_.emplace_back(id, Serializer{});
  return sections_.back().second;
}

std::vector<std::byte> CheckpointWriter::encode() const {
  Serializer out;
  for (const char c : kMagic) out.put_u8(static_cast<std::uint8_t>(c));
  out.put_u32(kSchemaVersion);
  out.put_u64(round_);
  out.put_u32(static_cast<std::uint32_t>(sections_.size()));
  out.put_u32(crc32c(out.bytes()));
  for (const auto& [id, payload] : sections_) {
    // The section CRC covers the 12-byte section header too: a flipped id
    // or size byte must fail validation, not silently rename or re-frame
    // the section.
    const std::size_t section_start = out.bytes().size();
    out.put_u32(id);
    out.put_u64(payload.size());
    out.put_raw(payload.bytes());
    out.put_u32(crc32c(
        std::span<const std::byte>(out.bytes()).subspan(section_start)));
  }
  return out.bytes();
}

void CheckpointWriter::write(const std::filesystem::path& path) const {
  const std::vector<std::byte> image = encode();
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  // Both stages retry transient errors with backoff; each write attempt
  // restarts the tmp image from scratch (trunc), so the atomic
  // tmp-then-rename protocol — and with it the torn/corrupt detection
  // story — is unchanged.
  const std::error_code write_ec = retry_transient_fs([&] {
    errno = 0;
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return errno_code();
    file.write(reinterpret_cast<const char*>(image.data()),
               static_cast<std::streamsize>(image.size()));
    file.flush();
    if (!file) {
      const std::error_code failed = errno_code();
      std::error_code rm;
      std::filesystem::remove(tmp, rm);
      return failed;
    }
    return std::error_code{};
  });
  if (write_ec) {
    std::error_code rm;
    std::filesystem::remove(tmp, rm);
    fail("cannot write " + tmp.string() + ": " + write_ec.message());
  }
  const std::error_code rename_ec = retry_transient_fs([&] {
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    return ec;
  });
  if (rename_ec) {
    std::error_code rm;
    std::filesystem::remove(tmp, rm);
    fail("rename to " + path.string() + " failed: " + rename_ec.message());
  }
}

void CheckpointWriter::write_torn(const std::filesystem::path& path,
                                  std::size_t keep_bytes) const {
  const std::vector<std::byte> image = encode();
  const std::size_t n = std::min(keep_bytes, image.size());
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) fail("cannot open " + path.string() + " for torn write");
  file.write(reinterpret_cast<const char*>(image.data()),
             static_cast<std::streamsize>(n));
  file.flush();
  if (!file) fail("torn write to " + path.string() + " failed");
}

CheckpointReader CheckpointReader::parse(std::vector<std::byte> bytes) {
  CheckpointReader reader;
  reader.bytes_ = std::move(bytes);
  Deserializer d(reader.bytes_);
  try {
    for (const char c : kMagic) {
      if (d.get_u8() != static_cast<std::uint8_t>(c)) fail("bad magic");
    }
    const std::uint32_t version = d.get_u32();
    if (version != kSchemaVersion) {
      fail("unsupported schema version " + std::to_string(version) +
           " (expected " + std::to_string(kSchemaVersion) + ")");
    }
    reader.round_ = d.get_u64();
    const std::uint32_t count = d.get_u32();
    const std::uint32_t header_crc = d.get_u32();
    const auto header =
        std::span<const std::byte>(reader.bytes_).first(kHeaderBytes);
    if (header_crc != crc32c(header)) fail("header CRC mismatch");

    reader.sections_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::size_t section_start = d.offset();
      const std::uint32_t id = d.get_u32();
      const std::uint64_t size = d.get_u64();
      if (size > d.remaining()) fail("truncated section payload");
      const std::size_t offset = d.offset();
      d.skip(static_cast<std::size_t>(size));
      const std::uint32_t crc = d.get_u32();
      const auto covered =
          std::span<const std::byte>(reader.bytes_)
              .subspan(section_start,
                       offset - section_start + static_cast<std::size_t>(size));
      if (crc != crc32c(covered)) fail("section CRC mismatch");
      for (const Section& s : reader.sections_) {
        if (s.id == id) fail("duplicate section id");
      }
      reader.sections_.push_back(
          Section{id, offset, static_cast<std::size_t>(size)});
    }
    if (!d.exhausted()) fail("trailing bytes after last section");
  } catch (const CheckpointError&) {
    throw;
  } catch (const SerialError&) {
    // A framing read ran off the end of the file: report it as the
    // checkpoint-level defect it is.
    fail("truncated file");
  }
  return reader;
}

CheckpointReader CheckpointReader::open(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) fail("cannot open " + path.string());
  const std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  file.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!file) fail("cannot read " + path.string());
  return parse(std::move(bytes));
}

bool CheckpointReader::has(std::uint32_t id) const noexcept {
  for (const Section& s : sections_) {
    if (s.id == id) return true;
  }
  return false;
}

Deserializer CheckpointReader::section(std::uint32_t id) const {
  for (const Section& s : sections_) {
    if (s.id == id) {
      return Deserializer(
          std::span<const std::byte>(bytes_).subspan(s.offset, s.size));
    }
  }
  fail("missing section " + std::to_string(id));
}

}  // namespace avcp::checkpoint
