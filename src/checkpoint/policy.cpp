#include "checkpoint/policy.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <string>
#include <system_error>

#include "checkpoint/checkpoint.h"
#include "common/contracts.h"

namespace avcp::checkpoint {

namespace {

volatile std::sig_atomic_t g_checkpoint_requested = 0;

void handle_checkpoint_signal(int) { g_checkpoint_requested = 1; }

constexpr char kPrefix[] = "ckpt-";
constexpr char kSuffix[] = ".avcp";

}  // namespace

void install_checkpoint_signal_handler(int signum) {
  std::signal(signum, handle_checkpoint_signal);
}

bool checkpoint_requested() noexcept { return g_checkpoint_requested != 0; }

bool consume_checkpoint_request() noexcept {
  const bool requested = g_checkpoint_requested != 0;
  g_checkpoint_requested = 0;
  return requested;
}

CheckpointStore::CheckpointStore(std::filesystem::path dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(keep) {
  AVCP_EXPECT(keep_ >= 1);
  const std::error_code ec = retry_transient_fs([&] {
    std::error_code e;
    std::filesystem::create_directories(dir_, e);
    return e;
  });
  if (ec) {
    throw CheckpointError("checkpoint: cannot create store directory " +
                          dir_.string() + ": " + ec.message());
  }
}

std::filesystem::path CheckpointStore::path_for(std::uint64_t round) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kPrefix,
                static_cast<unsigned long long>(round), kSuffix);
  return dir_ / name;
}

std::optional<std::uint64_t> CheckpointStore::round_of(
    const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  const std::size_t prefix_len = sizeof(kPrefix) - 1;
  const std::size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (name.compare(0, prefix_len, kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t round = 0;
  for (std::size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    round = round * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return round;
}

std::vector<std::filesystem::path> CheckpointStore::generations() const {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    if (const auto round = round_of(entry.path())) {
      found.emplace_back(*round, entry.path());
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::filesystem::path> paths;
  paths.reserve(found.size());
  for (auto& [round, path] : found) paths.push_back(std::move(path));
  return paths;
}

void CheckpointStore::prune() const {
  const std::vector<std::filesystem::path> paths = generations();
  for (std::size_t i = keep_; i < paths.size(); ++i) {
    // Transient errors retry with backoff; anything else stays best-effort
    // (a stale generation is harmless, recovery skips it by round order).
    retry_transient_fs([&] {
      std::error_code ec;
      std::filesystem::remove(paths[i], ec);
      return ec;
    });
  }
}

}  // namespace avcp::checkpoint
