// Versioned, CRC-protected checkpoint files (crash-tolerance layer).
//
// A checkpoint is a snapshot of every stateful engine's save_state payload,
// framed so that torn writes, bit rot, and schema drift are *detected* and
// rejected with a typed error instead of silently resuming from garbage:
//
//   header:   magic "AVCPCKPT" | u32 schema version | u64 round |
//             u32 section count | u32 CRC-32C of the preceding bytes
//   section:  u32 id | u64 payload size | payload
//             | u32 CRC-32C(id | size | payload)
//
// Everything is little-endian (common/serial.h) regardless of host. Writes
// are atomic: the encoded image goes to `<path>.tmp` and is renamed over
// the destination only after a successful flush, so a crash mid-write can
// never destroy the previous generation — the worst case is a stray .tmp.
// write_torn() exists for the fault layer: it deliberately violates that
// protocol (a truncated image at the *final* path) so recovery's
// fall-back-to-previous-generation path can be exercised.
//
// Read-side failure model: every malformation — bad magic, unsupported
// schema version, truncated header or section, CRC mismatch, duplicate or
// missing section — throws CheckpointError, which derives SerialError, so
// one catch covers both framing and payload-decoding rejections.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <system_error>
#include <vector>

#include "common/serial.h"

namespace avcp::checkpoint {

/// Bounded retry-with-backoff for the store's filesystem operations. A
/// snapshot is periodic, so transient conditions — an interrupted syscall,
/// a briefly full or busy volume — should cost a few milliseconds of
/// backoff, not the whole generation. Anything non-transient (permission,
/// missing parent, I/O error) still fails on the first attempt.
struct FsRetryPolicy {
  std::size_t attempts = 4;  // total tries, >= 1
  std::size_t backoff_initial_ms = 1;
  std::size_t backoff_factor = 4;  // exponential: 1, 4, 16 ms
};

/// The errno conditions worth retrying: EINTR, EAGAIN, ENOSPC, EBUSY.
bool is_transient_fs_error(const std::error_code& ec) noexcept;

/// Runs `op` until it returns success, a non-transient error, or the
/// attempt budget is spent; returns the last error_code ({} on success).
/// `sleep` (null = std::this_thread::sleep_for) receives each backoff in
/// milliseconds — injectable so tests don't wait out real backoffs.
std::error_code retry_transient_fs(
    const std::function<std::error_code()>& op,
    const FsRetryPolicy& policy = {},
    const std::function<void(std::size_t)>& sleep = nullptr);

/// Thrown on any malformed or incompatible checkpoint file. Derives
/// SerialError so callers can treat framing and payload corruption alike.
class CheckpointError : public SerialError {
 public:
  explicit CheckpointError(const std::string& message)
      : SerialError(message) {}
};

/// Bumped whenever the framing or any engine payload layout changes; a
/// file with a different version is rejected (no cross-version migration).
inline constexpr std::uint32_t kSchemaVersion = 2;

/// Well-known section ids. A file may carry any subset; readers ask for
/// the ones their wiring expects and reject on absence.
inline constexpr std::uint32_t kSectionSystem = 0x01;      // system plant
inline constexpr std::uint32_t kSectionAgentSim = 0x02;    // agent simulator
inline constexpr std::uint32_t kSectionTraceReplay = 0x03; // trace replay
inline constexpr std::uint32_t kSectionController = 0x04;  // cloud controller
inline constexpr std::uint32_t kSectionMeanField = 0x05;   // mean-field runner
inline constexpr std::uint32_t kSectionAux = 0x06;         // caller extras
inline constexpr std::uint32_t kSectionService = 0x07;     // service engine

/// Accumulates sections and produces the framed image.
class CheckpointWriter {
 public:
  /// `round` is the number of completed rounds the snapshot represents; it
  /// rides in the header so recovery can order generations without parsing
  /// payloads.
  explicit CheckpointWriter(std::uint64_t round) : round_(round) {}

  /// Opens a new section; returns the serializer to fill. Ids must be
  /// unique within a file.
  Serializer& section(std::uint32_t id);

  std::uint64_t round() const noexcept { return round_; }

  /// The complete framed image (header + sections, CRCs included).
  std::vector<std::byte> encode() const;

  /// Atomic write: encode to `<path>.tmp`, flush, rename over `path`.
  /// Throws CheckpointError on any I/O failure (the .tmp is removed).
  void write(const std::filesystem::path& path) const;

  /// Deliberately torn write for crash-injection tests: the first
  /// `keep_bytes` of the image, written *directly* to the final path with
  /// no rename protocol — exactly what a non-atomic writer dies leaving.
  void write_torn(const std::filesystem::path& path,
                  std::size_t keep_bytes) const;

 private:
  std::uint64_t round_;
  std::vector<std::pair<std::uint32_t, Serializer>> sections_;
};

/// Parses and validates a framed image; hands out per-section readers.
class CheckpointReader {
 public:
  /// Validates framing, version, and every CRC. Throws CheckpointError on
  /// any defect. The reader owns the bytes; section() spans into them.
  static CheckpointReader parse(std::vector<std::byte> bytes);

  /// Reads the whole file then parse()s it. Throws CheckpointError when
  /// the file cannot be opened or read.
  static CheckpointReader open(const std::filesystem::path& path);

  /// Completed rounds at snapshot time (from the header).
  std::uint64_t round() const noexcept { return round_; }

  bool has(std::uint32_t id) const noexcept;

  /// A deserializer over the section's payload. Throws CheckpointError
  /// when the section is absent.
  Deserializer section(std::uint32_t id) const;

 private:
  struct Section {
    std::uint32_t id;
    std::size_t offset;
    std::size_t size;
  };

  CheckpointReader() = default;

  std::vector<std::byte> bytes_;
  std::uint64_t round_ = 0;
  std::vector<Section> sections_;
};

}  // namespace avcp::checkpoint
