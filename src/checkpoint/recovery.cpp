#include "checkpoint/recovery.h"

#include <algorithm>
#include <thread>

#include "common/contracts.h"

namespace avcp::checkpoint {

RecoveryOutcome run_with_recovery(const CheckpointStore& store,
                                  const CheckpointPolicy& policy,
                                  std::size_t total_rounds,
                                  const RecoveryHooks& hooks,
                                  const RecoveryOptions& options) {
  AVCP_EXPECT(hooks.reset != nullptr);
  AVCP_EXPECT(hooks.step != nullptr);

  RecoveryOutcome outcome;
  if (hooks.restore != nullptr) {
    for (const std::filesystem::path& path : store.generations()) {
      try {
        const CheckpointReader reader = CheckpointReader::open(path);
        hooks.restore(reader);
        outcome.start_round = static_cast<std::size_t>(reader.round());
        outcome.resumed = true;
        outcome.resumed_from = path.string();
        break;
      } catch (const SerialError&) {
        // Torn, bit-rotted, stale-schema, or shape-mismatched generation:
        // fall back to the one before it.
        ++outcome.corrupt_skipped;
      }
    }
  }
  if (!outcome.resumed && outcome.corrupt_skipped > 0 &&
      options.fail_when_all_corrupt) {
    throw AllGenerationsCorruptError(
        "recovery: all " + std::to_string(outcome.corrupt_skipped) +
        " checkpoint generation(s) corrupt; refusing to cold-start");
  }
  if (!outcome.resumed) hooks.reset();

  const auto snapshot = [&](std::size_t completed) {
    CheckpointWriter writer(completed);
    hooks.save(writer);
    if (hooks.write != nullptr) {
      hooks.write(writer, store.path_for(completed));
    } else {
      writer.write(store.path_for(completed));
    }
    store.prune();
    ++outcome.checkpoints_written;
  };

  // Round of the newest snapshot on disk, so a graceful stop right after a
  // periodic snapshot doesn't write the same generation twice.
  std::size_t last_saved =
      outcome.resumed ? outcome.start_round : ~std::size_t{0};
  outcome.completed_rounds = outcome.start_round;
  for (std::size_t round = outcome.start_round; round < total_rounds; ++round) {
    hooks.step(round);
    const std::size_t completed = round + 1;
    outcome.completed_rounds = completed;
    if (hooks.save != nullptr && policy.should_checkpoint(completed)) {
      snapshot(completed);
      last_saved = completed;
    }
    if (hooks.stop != nullptr && hooks.stop()) {
      outcome.stopped_early = true;
      if (hooks.save != nullptr && last_saved != completed) {
        snapshot(completed);
      }
      break;
    }
  }
  return outcome;
}

SupervisorOutcome run_supervised(const CheckpointStore& store,
                                 const CheckpointPolicy& policy,
                                 std::size_t total_rounds,
                                 const RecoveryHooks& hooks,
                                 const SupervisorOptions& options) {
  AVCP_EXPECT(options.max_restarts <= 1000);
  AVCP_EXPECT(options.backoff_base.count() >= 0);
  AVCP_EXPECT(options.backoff_cap >= options.backoff_base);

  RecoveryOptions ropts;
  ropts.fail_when_all_corrupt = true;

  SupervisorOutcome out;
  for (;;) {
    ++out.attempts;
    try {
      out.recovery = run_with_recovery(store, policy, total_rounds, hooks,
                                       ropts);
      out.exit_code = kSupervisorOk;
      out.last_error.clear();
      return out;
    } catch (const AllGenerationsCorruptError& e) {
      // Retrying cannot help: every restart would walk the same corrupt
      // generations. Surface it as its own exit code so the operator (or
      // the soak harness) can wipe or repair the store deliberately.
      out.last_error = e.what();
      out.exit_code = kSupervisorAllCorrupt;
      return out;
    } catch (const std::exception& e) {
      ++out.crashes;
      out.last_error = e.what();
      if (out.crashes > options.max_restarts) {
        out.exit_code = kSupervisorCrashLoop;
        return out;
      }
      // Exponential backoff: base << (crash - 1), capped. Shift bounded by
      // max_restarts <= 1000 via the cap comparison below.
      std::chrono::milliseconds wait = options.backoff_base;
      for (std::size_t i = 1; i < out.crashes && wait < options.backoff_cap;
           ++i) {
        wait *= 2;
      }
      wait = std::min(wait, options.backoff_cap);
      out.backoff_total += wait;
      if (options.sleep != nullptr) {
        options.sleep(wait);
      } else if (wait.count() > 0) {
        std::this_thread::sleep_for(wait);
      }
    }
  }
}

}  // namespace avcp::checkpoint
