#include "checkpoint/recovery.h"

#include "common/contracts.h"

namespace avcp::checkpoint {

RecoveryOutcome run_with_recovery(const CheckpointStore& store,
                                  const CheckpointPolicy& policy,
                                  std::size_t total_rounds,
                                  const RecoveryHooks& hooks) {
  AVCP_EXPECT(hooks.reset != nullptr);
  AVCP_EXPECT(hooks.step != nullptr);

  RecoveryOutcome outcome;
  if (hooks.restore != nullptr) {
    for (const std::filesystem::path& path : store.generations()) {
      try {
        const CheckpointReader reader = CheckpointReader::open(path);
        hooks.restore(reader);
        outcome.start_round = static_cast<std::size_t>(reader.round());
        outcome.resumed = true;
        outcome.resumed_from = path.string();
        break;
      } catch (const SerialError&) {
        // Torn, bit-rotted, stale-schema, or shape-mismatched generation:
        // fall back to the one before it.
        ++outcome.corrupt_skipped;
      }
    }
  }
  if (!outcome.resumed) hooks.reset();

  const auto snapshot = [&](std::size_t completed) {
    CheckpointWriter writer(completed);
    hooks.save(writer);
    if (hooks.write != nullptr) {
      hooks.write(writer, store.path_for(completed));
    } else {
      writer.write(store.path_for(completed));
    }
    store.prune();
    ++outcome.checkpoints_written;
  };

  // Round of the newest snapshot on disk, so a graceful stop right after a
  // periodic snapshot doesn't write the same generation twice.
  std::size_t last_saved =
      outcome.resumed ? outcome.start_round : ~std::size_t{0};
  outcome.completed_rounds = outcome.start_round;
  for (std::size_t round = outcome.start_round; round < total_rounds; ++round) {
    hooks.step(round);
    const std::size_t completed = round + 1;
    outcome.completed_rounds = completed;
    if (hooks.save != nullptr && policy.should_checkpoint(completed)) {
      snapshot(completed);
      last_saved = completed;
    }
    if (hooks.stop != nullptr && hooks.stop()) {
      outcome.stopped_early = true;
      if (hooks.save != nullptr && last_saved != completed) {
        snapshot(completed);
      }
      break;
    }
  }
  return outcome;
}

}  // namespace avcp::checkpoint
