// When to checkpoint, and where the generations live.
//
// CheckpointPolicy decides *when*: every R completed rounds, and/or when an
// operator signal (SIGUSR1 by default) has been received since the last
// check. CheckpointStore manages *where*: a directory of generation files
// named ckpt-<round>.avcp, ordered by round, pruned to a retention count.
// Keeping >= 2 generations is what makes torn final writes survivable —
// recovery falls back to the previous intact file (recovery.h).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

namespace avcp::checkpoint {

/// Installs a handler on `signum` that flags a checkpoint request; the
/// next should_checkpoint() of an on_signal policy consumes it. Safe to
/// call repeatedly. The handler only sets a sig_atomic_t flag.
void install_checkpoint_signal_handler(int signum);

/// True if a signal arrived since the last consume (does not clear it).
bool checkpoint_requested() noexcept;

/// Atomically reads and clears the request flag.
bool consume_checkpoint_request() noexcept;

struct CheckpointPolicy {
  /// Snapshot after every R completed rounds (0 = no periodic snapshots).
  std::size_t every_rounds = 0;
  /// Also snapshot when the signal flag is set (install the handler
  /// first). should_checkpoint consumes the flag.
  bool on_signal = false;

  /// Whether a snapshot is due after `completed_rounds` rounds have run.
  bool should_checkpoint(std::size_t completed_rounds) const {
    if (every_rounds > 0 && completed_rounds > 0 &&
        completed_rounds % every_rounds == 0) {
      return true;
    }
    return on_signal && consume_checkpoint_request();
  }
};

/// A directory of checkpoint generations.
class CheckpointStore {
 public:
  /// Creates `dir` (and parents) if absent. `keep` >= 1 generations are
  /// retained by prune().
  explicit CheckpointStore(std::filesystem::path dir, std::size_t keep = 2);

  const std::filesystem::path& dir() const noexcept { return dir_; }
  std::size_t keep() const noexcept { return keep_; }

  /// The canonical file name for a snapshot taken after `round` rounds.
  std::filesystem::path path_for(std::uint64_t round) const;

  /// Existing generation files, newest round first. Files that don't match
  /// the ckpt-<round>.avcp pattern are ignored (including stray .tmp).
  std::vector<std::filesystem::path> generations() const;

  /// Removes all but the newest keep() generations (best effort).
  void prune() const;

  /// The round encoded in a generation file name, or nullopt when the name
  /// doesn't match the pattern.
  static std::optional<std::uint64_t> round_of(
      const std::filesystem::path& path);

 private:
  std::filesystem::path dir_;
  std::size_t keep_;
};

}  // namespace avcp::checkpoint
