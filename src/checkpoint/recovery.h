// Supervisor-style run loop with checkpoint-based crash recovery.
//
// run_with_recovery owns the restore-or-reset decision and the periodic
// snapshot schedule; the caller supplies the engine-specific pieces as
// hooks. On entry it walks the store's generations newest-first and
// restores the first one that parses and loads cleanly — a torn or
// bit-rotted latest file (every rejection surfaces as SerialError, which
// CheckpointError derives from) is *skipped*, not fatal, and the previous
// generation takes over. Only when no generation survives does the run
// cold-start via reset(). The loop then steps rounds [start, total) and
// snapshots whenever the policy fires.
//
// Combined with atomic writes and keep >= 2 retention this gives the
// crash-tolerance contract: a process killed at any point — including mid
// checkpoint write — reruns to the exact same final state as an
// uninterrupted run, because restore + remaining rounds is bit-identical
// to the straight-through trajectory (the engines' save/load contract).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "checkpoint/checkpoint.h"
#include "checkpoint/policy.h"

namespace avcp::checkpoint {

/// Every on-disk generation failed to parse or load (recovery had nothing
/// to resume from even though snapshots exist). Only thrown when
/// RecoveryOptions::fail_when_all_corrupt is set; derives CheckpointError
/// so existing catch sites keep working.
class AllGenerationsCorruptError : public CheckpointError {
 public:
  explicit AllGenerationsCorruptError(const std::string& message)
      : CheckpointError(message) {}
};

struct RecoveryHooks {
  /// Cold start: (re)initialize the engine to round 0.
  std::function<void()> reset;
  /// Load engine state from a parsed checkpoint; throw SerialError (or a
  /// derivative) to reject it and let recovery fall back a generation.
  std::function<void(const CheckpointReader&)> restore;
  /// Run round `round` (0-based).
  std::function<void(std::size_t round)> step;
  /// Fill the snapshot for the writer's round. Null = never snapshot.
  std::function<void(CheckpointWriter&)> save;
  /// Override the file write (null = writer.write(path), the atomic
  /// protocol). Exists for crash injection: a faults::CrashInjector armed
  /// with kMidCheckpointWrite tears the image at the final path and dies
  /// here, exercising the fall-back-a-generation path on the next run.
  std::function<void(const CheckpointWriter&, const std::filesystem::path&)>
      write;
  /// Polled after each completed round (null = never stop). Returning true
  /// drains the loop gracefully: a final checkpoint generation is flushed
  /// (when `save` is set and the round isn't already snapshotted) and the
  /// outcome reports stopped_early — the service layer's SIGTERM/SIGINT
  /// path, where the next start resumes from exactly this round.
  std::function<bool()> stop;
};

struct RecoveryOutcome {
  /// Round the loop started from (0 on a cold start).
  std::size_t start_round = 0;
  bool resumed = false;
  /// Generation file the run resumed from (empty on a cold start).
  std::string resumed_from;
  /// Generations that failed to parse or load and were skipped.
  std::size_t corrupt_skipped = 0;
  std::size_t checkpoints_written = 0;
  /// True when hooks.stop drained the loop before total_rounds.
  bool stopped_early = false;
  /// Rounds actually completed when the loop returned.
  std::size_t completed_rounds = 0;
};

struct RecoveryOptions {
  /// Throw AllGenerationsCorruptError instead of cold-starting when the
  /// store holds generations but every one was rejected. Silently replaying
  /// from round 0 over a corrupt store is a policy decision (it can be
  /// arbitrarily expensive and hides the corruption); the supervisor turns
  /// this on and converts the throw into a distinct exit code.
  bool fail_when_all_corrupt = false;
};

/// Restores (or resets), then runs rounds up to `total_rounds`,
/// snapshotting per `policy` and pruning the store after each write.
RecoveryOutcome run_with_recovery(const CheckpointStore& store,
                                  const CheckpointPolicy& policy,
                                  std::size_t total_rounds,
                                  const RecoveryHooks& hooks,
                                  const RecoveryOptions& options = {});

/// Crash-loop guard around run_with_recovery (DESIGN.md §17).
struct SupervisorOptions {
  /// Consecutive crashed attempts tolerated before giving up. The engines
  /// are deterministic, so a crash that survives this many resume-and-replay
  /// attempts is almost certainly deterministic too — retrying forever
  /// would just burn the machine.
  std::size_t max_restarts = 5;
  /// Exponential backoff between restart attempts: base << (crash-1),
  /// capped. Real deployments keep the defaults; tests inject `sleep`.
  std::chrono::milliseconds backoff_base{100};
  std::chrono::milliseconds backoff_cap{5000};
  /// Injectable backoff (null = std::this_thread::sleep_for), so tests and
  /// sims stay instant and can record the schedule.
  std::function<void(std::chrono::milliseconds)> sleep;
};

/// Distinct process exit codes for the supervisor's terminal states.
inline constexpr int kSupervisorOk = 0;
/// Restart budget exhausted by consecutive crashes.
inline constexpr int kSupervisorCrashLoop = 64;
/// Every checkpoint generation is corrupt; operator intervention needed.
inline constexpr int kSupervisorAllCorrupt = 65;

struct SupervisorOutcome {
  int exit_code = kSupervisorOk;
  /// run_with_recovery invocations, including the first and the final one.
  std::size_t attempts = 0;
  std::size_t crashes = 0;
  /// Total backoff requested (whether or not `sleep` actually slept).
  std::chrono::milliseconds backoff_total{0};
  /// what() of the last crash (empty when exit_code == kSupervisorOk).
  std::string last_error;
  /// The final attempt's recovery outcome (valid when it returned).
  RecoveryOutcome recovery;
};

/// Runs run_with_recovery under a crash-loop guard: a throwing attempt is
/// retried after exponential backoff until it either completes
/// (kSupervisorOk), crashes max_restarts + 1 consecutive times
/// (kSupervisorCrashLoop), or finds every generation corrupt
/// (kSupervisorAllCorrupt — fail_when_all_corrupt is forced on). Instead
/// of retrying forever, the caller gets a distinct exit code per state.
SupervisorOutcome run_supervised(const CheckpointStore& store,
                                 const CheckpointPolicy& policy,
                                 std::size_t total_rounds,
                                 const RecoveryHooks& hooks,
                                 const SupervisorOptions& options = {});

}  // namespace avcp::checkpoint
