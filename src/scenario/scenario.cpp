#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "common/contracts.h"
#include "core/fds.h"
#include "core/sensor_model.h"
#include "faults/fault_model.h"
#include "roadnet/builders.h"
#include "service/service_engine.h"
#include "system/system.h"

namespace avcp::scenario {

namespace {

constexpr double kBaseFloor = 0.7;
constexpr double kFloorSlope = 0.6;
constexpr std::size_t kSensors = 3;  // lattice 2^3 = 8 decisions

/// Same plant family as bench_byzantine: a chain of beta-4.0 regions with
/// 0.3 neighbour coupling, betas rich enough that the desired field is
/// attainable and clean runs settle.
core::MultiRegionGame make_game(std::size_t regions, double beta) {
  core::GameConfig config;
  config.lattice = core::DecisionLattice(kSensors);
  const auto tables = core::paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;
  std::vector<core::RegionSpec> specs(regions);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].beta = beta;
    specs[i].gamma_self = 1.0;
    if (i > 0) {
      specs[i].neighbors.emplace_back(static_cast<core::RegionId>(i - 1), 0.3);
    }
    if (i + 1 < specs.size()) {
      specs[i].neighbors.emplace_back(static_cast<core::RegionId>(i + 1), 0.3);
    }
  }
  return core::MultiRegionGame(std::move(config), std::move(specs));
}

core::DesiredFields initial_fields(std::size_t regions,
                                   std::size_t decisions) {
  core::DesiredFields fields(regions, decisions);
  for (core::RegionId i = 0; i < regions; ++i) {
    fields.set_target(i, 0, Interval{kBaseFloor, 1.0});
  }
  return fields;
}

void run_service_twist(const ScenarioConfig& config, std::size_t epochs,
                       ScenarioResult& result) {
  const auto game = make_game(config.plant.regions, config.plant.beta);
  const auto graph = roadnet::make_grid(6, 6);
  core::FixedRatioController inner(0.7);

  service::ServiceParams sp;
  sp.vehicles_per_region = config.plant.vehicles_per_region;
  sp.seed = config.service.seed;
  sp.attacker_fraction = config.service.attacker_fraction;
  sp.churn_exploit = true;
  sp.exploit_patience = config.service.exploit_patience;
  sp.carry_suspicion = config.service.carry_suspicion;
  // The free-ride residual in the service plant is x * 3/3 ~ 0.7 per
  // epoch, well under the default system threshold of 2.0 — score the
  // service loop on its own scale so persistent free-riders actually
  // quarantine and the exploit trigger fires.
  sp.reputation.quarantine_threshold = 0.4;
  sp.reputation.rehab_threshold = 0.1;
  sp.reputation.min_rounds = 2;
  sp.churn.leave_rate = 0.01;
  sp.churn.join_slots = 2;
  sp.churn.join_rate = 0.5;
  sp.churn.seed = config.service.seed;

  service::ServiceEngine svc(game, inner, &graph, sp, nullptr);
  svc.init(game.uniform_state(),
           std::vector<double>(config.plant.regions, 0.5));
  for (std::size_t e = 0; e < epochs; ++e) svc.run_epoch();
  result.exploit_rejoins = svc.counters().exploit_rejoins;
  result.service_quarantined = svc.quarantined_count();
}

ScenarioResult run_impl(const ScenarioConfig& config, std::size_t rounds,
                        bool with_attack) {
  const PlantConfig& plant = config.plant;
  const auto game = make_game(plant.regions, plant.beta);
  const std::size_t decisions = game.num_decisions();

  system::SystemParams params;
  params.vehicles_per_region = plant.vehicles_per_region;
  params.seed = plant.seed;
  params.net = config.net;

  const auto popts = config.pipeline_options();
  byzantine::ReportPipeline pipeline(plant.regions, decisions,
                                     plant.vehicles_per_region, popts);

  // Exactly one attack arm is wired; both model objects always exist so
  // the construction order of draws is scenario-independent.
  byzantine::AdversaryParams static_params = config.static_attack;
  byzantine::AdaptiveAdversaryParams adaptive_params = config.adaptive_attack;
  if (!with_attack || config.attack != AttackKind::kStatic) {
    static_params.attacker_fraction = 0.0;
  }
  if (!with_attack || config.attack != AttackKind::kAdaptive) {
    adaptive_params.attacker_fraction = 0.0;
  }
  const byzantine::AdversaryModel static_model(static_params);
  byzantine::AdaptiveAdversary adaptive(plant.regions,
                                        plant.vehicles_per_region,
                                        adaptive_params);

  std::optional<system::CooperativePerceptionSystem> sys;
  if (adaptive.active()) {
    sys.emplace(game, params, nullptr, &pipeline, &adaptive);
  } else {
    sys.emplace(game, params, nullptr,
                static_model.params().any() ? &static_model : nullptr,
                &pipeline);
  }
  sys->init_from(game.uniform_state());

  core::FdsOptions fopts;
  fopts.max_step = 0.15;
  core::FdsController controller(game, initial_fields(plant.regions, decisions),
                                 fopts);

  ScenarioResult result;
  result.x.reserve(rounds);
  result.honest.reserve(rounds);
  result.observed0.reserve(rounds);
  for (std::size_t t = 0; t < rounds; ++t) {
    const auto report = sys->run_round(controller);
    controller.set_desired(byzantine::density_weighted_fields(
        plant.regions, decisions, report.byzantine.density, kBaseFloor,
        kFloorSlope));
    result.x.push_back(report.x);
    result.honest.push_back(sys->honest_state());
    std::vector<double> observed(plant.regions);
    for (core::RegionId i = 0; i < plant.regions; ++i) {
      observed[i] = report.byzantine.observed.p[i][0];
      result.outliers_rejected += report.byzantine.outliers_rejected[i];
    }
    result.observed0.push_back(std::move(observed));
    if (t + 1 == rounds) {
      result.adaptive_dormant = report.byzantine.adaptive_dormant;
    }
  }

  const std::size_t tail = std::min(config.plant.tail_rounds, rounds);
  std::size_t n = 0;
  for (std::size_t t = rounds - tail; t < rounds; ++t) {
    for (core::RegionId i = 0; i < plant.regions; ++i) {
      result.observed_error_tail +=
          std::abs(result.observed0[t][i] - result.honest[t].p[i][0]);
      ++n;
    }
  }
  if (n > 0) result.observed_error_tail /= static_cast<double>(n);

  result.quarantined = pipeline.reputation().total_quarantined();
  result.distrusted = pipeline.trust().total_distrusted();
  std::size_t tp = 0, fp = 0, fn = 0;
  for (core::RegionId i = 0; i < plant.regions; ++i) {
    for (std::size_t v = 0; v < plant.vehicles_per_region; ++v) {
      const bool bad =
          (config.attack == AttackKind::kStatic && with_attack &&
           static_model.ever_attacks(i, v)) ||
          (adaptive.active() && adaptive.ever_attacks(i, v));
      const bool flagged = pipeline.excluded(i, v);
      tp += (bad && flagged) ? 1 : 0;
      fp += (!bad && flagged) ? 1 : 0;
      fn += (bad && !flagged) ? 1 : 0;
    }
  }
  result.precision =
      tp + fp == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
  result.recall =
      tp + fn == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);

  if (with_attack && config.service.epochs > 0) {
    run_service_twist(config, config.service.epochs, result);
  }
  return result;
}

ScenarioConfig base_scenario(std::string name, std::string summary) {
  ScenarioConfig sc;
  sc.name = std::move(name);
  sc.summary = std::move(summary);
  return sc;
}

}  // namespace

void ScenarioConfig::validate() const {
  AVCP_EXPECT(!name.empty());
  AVCP_EXPECT(plant.regions >= 1);
  AVCP_EXPECT(plant.vehicles_per_region >= 2);
  AVCP_EXPECT(plant.rounds >= 1);
  AVCP_EXPECT(plant.tail_rounds >= 1 && plant.tail_rounds <= plant.rounds);
  AVCP_EXPECT(plant.beta > 0.0);
  switch (attack) {
    case AttackKind::kNone:
      break;
    case AttackKind::kStatic:
      AVCP_EXPECT(static_attack.any());
      AVCP_EXPECT(static_attack.attacker_fraction <= 1.0);
      break;
    case AttackKind::kAdaptive:
      AVCP_EXPECT(adaptive_attack.any());
      adaptive_attack.validate();
      break;
  }
  pipeline_options().reputation.validate();
  if (defense == DefenseKind::kTrust) {
    byzantine::TrustParams checked = trust;
    checked.enabled = true;
    checked.validate();
  }
  AVCP_EXPECT(service.attacker_fraction >= 0.0 &&
              service.attacker_fraction <= 1.0);
  AVCP_EXPECT(service.exploit_patience >= 1);
  net.validate();
}

byzantine::PipelineOptions ScenarioConfig::pipeline_options() const {
  byzantine::PipelineOptions options;
  switch (defense) {
    case DefenseKind::kTrusting:
      options.enforce_quarantine = false;
      options.telemetry_weight = 0.0;
      options.behavior_weight = 0.0;
      break;
    case DefenseKind::kRobust:
      options.aggregator.mode = byzantine::AggregationMode::kMedian;
      options.aggregator.reject_outliers = true;
      break;
    case DefenseKind::kTrust:
      options.aggregator.mode = byzantine::AggregationMode::kMedian;
      options.aggregator.reject_outliers = true;
      options.trust = trust;
      options.trust.enabled = true;
      break;
  }
  return options;
}

ScenarioResult run_scenario(const ScenarioConfig& config,
                            std::size_t rounds_override) {
  config.validate();
  const std::size_t rounds =
      rounds_override > 0 ? rounds_override : config.plant.rounds;
  return run_impl(config, rounds, /*with_attack=*/true);
}

ScenarioResult run_scenario_vs_clean(const ScenarioConfig& config,
                                     std::size_t rounds_override) {
  config.validate();
  const std::size_t rounds =
      rounds_override > 0 ? rounds_override : config.plant.rounds;
  ScenarioResult run = run_impl(config, rounds, /*with_attack=*/true);
  const ScenarioResult clean = run_impl(config, rounds, /*with_attack=*/false);
  const std::size_t tail = std::min(config.plant.tail_rounds, rounds);
  const std::size_t from = rounds - tail;
  double err = 0.0;
  std::size_t n = 0;
  for (std::size_t t = from; t < rounds; ++t) {
    for (std::size_t i = 0; i < config.plant.regions; ++i) {
      err += std::abs(run.x[t][i] - clean.x[t][i]);
      ++n;
    }
  }
  run.ratio_error_tail = n == 0 ? 0.0 : err / static_cast<double>(n);
  return run;
}

const std::vector<ScenarioConfig>& scenario_catalog() {
  static const std::vector<ScenarioConfig> catalog = [] {
    std::vector<ScenarioConfig> list;

    {
      auto sc = base_scenario("clean-robust",
                              "honest fleet under the robust defense "
                              "(baseline / bit-identity anchor)");
      sc.defense = DefenseKind::kRobust;
      list.push_back(std::move(sc));
    }
    {
      auto sc = base_scenario("clean-trust",
                              "honest fleet with the trust layer armed; "
                              "nobody must ever be distrusted");
      sc.defense = DefenseKind::kTrust;
      list.push_back(std::move(sc));
    }
    {
      auto sc = base_scenario("static-inflate-trusting",
                              "open-loop share-inflation vs the pre-PR "
                              "trusting mean");
      sc.attack = AttackKind::kStatic;
      sc.static_attack.attacker_fraction = 0.2;
      sc.static_attack.strategy = byzantine::AttackStrategy::kInflateSharing;
      sc.static_attack.seed = 13;
      sc.defense = DefenseKind::kTrusting;
      list.push_back(std::move(sc));
    }
    {
      auto sc = base_scenario("static-inflate-robust",
                              "open-loop share-inflation vs median + MAD "
                              "+ quarantine");
      sc.attack = AttackKind::kStatic;
      sc.static_attack.attacker_fraction = 0.2;
      sc.static_attack.strategy = byzantine::AttackStrategy::kInflateSharing;
      sc.static_attack.seed = 13;
      sc.defense = DefenseKind::kRobust;
      list.push_back(std::move(sc));
    }
    {
      auto sc = base_scenario("static-density-poison-robust",
                              "open-loop density poisoning vs the robust "
                              "defense");
      sc.attack = AttackKind::kStatic;
      sc.static_attack.attacker_fraction = 0.2;
      sc.static_attack.strategy = byzantine::AttackStrategy::kDensityPoison;
      sc.static_attack.seed = 13;
      sc.defense = DefenseKind::kRobust;
      list.push_back(std::move(sc));
    }

    const auto adaptive_pair = [&list](const char* slug, const char* what,
                                       byzantine::AdaptivePolicy policy,
                                       double fraction) {
      for (const DefenseKind defense :
           {DefenseKind::kRobust, DefenseKind::kTrust}) {
        const bool trusty = defense == DefenseKind::kTrust;
        auto sc = base_scenario(
            std::string(slug) + (trusty ? "-trust" : "-robust"),
            std::string(what) + (trusty
                                     ? " vs the ratcheting trust layer"
                                     : " vs the EWMA-only robust defense"));
        sc.plant.rounds = 120;
        sc.plant.tail_rounds = 30;
        // Interior operating regime: the claim channel actually moves the
        // cloud's picture (beta 4.0 saturates at share-everything, where a
        // falsified share-everything claim is vacuously true).
        sc.plant.beta = 1.5;
        sc.attack = AttackKind::kAdaptive;
        sc.adaptive_attack.attacker_fraction = fraction;
        sc.adaptive_attack.policy = policy;
        // Two-round rotation shifts: a 2-round zero-upload burst still
        // decays under the EWMA quarantine threshold (the attack works),
        // while single-round shifts would also slip the trust layer's
        // consecutive-zero evidence gate — a defender artifact, not an
        // attacker choice worth modelling separately.
        sc.adaptive_attack.shift_rounds = 2;
        sc.adaptive_attack.seed = 17;
        sc.defense = defense;
        list.push_back(std::move(sc));
      }
    };
    adaptive_pair("adaptive-build-defect",
                  "reputation-aware build-then-defect pacing",
                  byzantine::AdaptivePolicy::kBuildThenDefect, 0.2);
    adaptive_pair("adaptive-probe",
                  "binary-search for the largest safe defection dose",
                  byzantine::AdaptivePolicy::kThresholdProbe, 0.2);
    adaptive_pair("adaptive-collusion",
                  "region cohorts rotating defection shifts",
                  byzantine::AdaptivePolicy::kRegionCollusion, 0.2);
    adaptive_pair("adaptive-collusion-heavy",
                  "30% colluding cohorts on a dense fleet",
                  byzantine::AdaptivePolicy::kRegionCollusion, 0.3);

    {
      auto sc = base_scenario("churn-exploit-open",
                              "quarantined attackers wash their identity "
                              "through leave/rejoin; per-id reputation "
                              "resets and the attack works");
      sc.attack = AttackKind::kAdaptive;
      sc.adaptive_attack.attacker_fraction = 0.2;
      sc.adaptive_attack.policy = byzantine::AdaptivePolicy::kChurnExploit;
      sc.adaptive_attack.seed = 17;
      sc.plant.rounds = 80;
      sc.plant.tail_rounds = 20;
      sc.plant.beta = 1.5;
      sc.defense = DefenseKind::kRobust;
      sc.service.epochs = 120;
      sc.service.carry_suspicion = false;
      list.push_back(std::move(sc));
    }
    {
      auto sc = base_scenario("churn-exploit-keyed",
                              "the same identity wash against keyed-identity "
                              "suspicion carry-over; the rejoin buys nothing");
      sc.attack = AttackKind::kAdaptive;
      sc.adaptive_attack.attacker_fraction = 0.2;
      sc.adaptive_attack.policy = byzantine::AdaptivePolicy::kChurnExploit;
      sc.adaptive_attack.seed = 17;
      sc.plant.rounds = 80;
      sc.plant.tail_rounds = 20;
      sc.plant.beta = 1.5;
      sc.defense = DefenseKind::kTrust;
      sc.service.epochs = 120;
      sc.service.carry_suspicion = true;
      list.push_back(std::move(sc));
    }

    {
      auto sc = base_scenario("link-drop30-robust",
                              "honest fleet over a 30% lossy inter-region "
                              "wire with retries and bounded staleness; "
                              "consensus must hold within the degraded "
                              "envelope");
      sc.defense = DefenseKind::kRobust;
      sc.net.drop_rate = 0.3;
      sc.net.delay_rate = 0.2;
      sc.net.max_delay_rounds = 2;
      sc.net.duplicate_rate = 0.1;
      sc.net.reorder_rate = 0.1;
      sc.net.max_retries = 2;
      sc.net.max_staleness = 3;
      sc.net.seed = 29;
      list.push_back(std::move(sc));
    }
    {
      auto sc = base_scenario("partition-heal-robust",
                              "the region graph splits in two for a "
                              "mid-run window, then heals; trajectories "
                              "must reconverge after the merge");
      sc.defense = DefenseKind::kRobust;
      sc.plant.rounds = 60;
      sc.plant.tail_rounds = 15;
      net::PartitionWindow window;
      window.first_round = 15;
      window.duration = 15;
      window.num_components = 2;
      window.salt = 5;
      sc.net.partitions.push_back(window);
      sc.net.max_staleness = 4;
      sc.net.seed = 29;
      list.push_back(std::move(sc));
    }
    {
      auto sc = base_scenario("link-drop-adaptive-trust",
                              "closed-loop collusion riding a lossy wire: "
                              "the trust layer must still contain the "
                              "attack while the transport degrades the "
                              "cloud's picture");
      sc.plant.rounds = 120;
      sc.plant.tail_rounds = 30;
      sc.plant.beta = 1.5;
      sc.attack = AttackKind::kAdaptive;
      sc.adaptive_attack.attacker_fraction = 0.2;
      sc.adaptive_attack.policy = byzantine::AdaptivePolicy::kRegionCollusion;
      sc.adaptive_attack.shift_rounds = 2;
      sc.adaptive_attack.seed = 17;
      sc.defense = DefenseKind::kTrust;
      sc.net.drop_rate = 0.2;
      sc.net.delay_rate = 0.1;
      sc.net.max_retries = 2;
      sc.net.max_staleness = 3;
      sc.net.seed = 29;
      list.push_back(std::move(sc));
    }

    for (const ScenarioConfig& sc : list) sc.validate();
    return list;
  }();
  return catalog;
}

const ScenarioConfig* find_scenario(std::string_view name) {
  for (const ScenarioConfig& sc : scenario_catalog()) {
    if (sc.name == name) return &sc;
  }
  return nullptr;
}

}  // namespace avcp::scenario
