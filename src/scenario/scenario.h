// Declarative attack x defense scenario catalog.
//
// Every robustness experiment in the repo is some wiring of the same five
// knobs: an attack (none / one of AdversaryModel's open-loop strategies /
// one of AdaptiveAdversary's closed-loop policies), a defense posture
// (trusting mean, robust median + EWMA quarantine, or the Beta-prior trust
// layer on top), a fleet mix (regions x vehicles), a round budget, and an
// optional service-layer churn twist (quarantined attackers washing their
// identity through leave/rejoin). ScenarioConfig names one such wiring as
// plain data; the registry enumerates the canonical suite so tests, the
// bench harness, and future experiment drivers all run the exact same
// configurations by name instead of re-wiring them by hand:
//
//   const ScenarioConfig* sc = scenario::find_scenario("adaptive-build-defect-trust");
//   sc->validate();
//   const ScenarioResult r = scenario::run_scenario(*sc);
//
// run_scenario drives the same telemetry-closed loop as bench_byzantine
// (FdsController floors recomputed every round from aggregated density) and
// is deterministic: every draw descends from ScenarioConfig seeds, so a
// scenario's trajectory is bit-identical across runs and thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "byzantine/adaptive_adversary.h"
#include "byzantine/adversary_model.h"
#include "byzantine/report_pipeline.h"
#include "core/game.h"
#include "net/link_model.h"

namespace avcp::scenario {

enum class AttackKind : std::uint8_t {
  kNone = 0,      // honest fleet (baseline / bit-identity anchor)
  kStatic = 1,    // AdversaryModel open-loop strategy
  kAdaptive = 2,  // AdaptiveAdversary closed-loop policy
};

enum class DefenseKind : std::uint8_t {
  kTrusting = 0,  // pre-robustness cloud: mean, no rejection, no scoring
  kRobust = 1,    // median + MAD rejection + EWMA quarantine (PR 2)
  kTrust = 2,     // kRobust plus the Beta-prior trust layer (trust.h)
};

/// The shared plant: a chain of beta-4.0 regions under the measured
/// system, desired-field floors driven by aggregated density telemetry.
struct PlantConfig {
  std::size_t regions = 3;
  std::size_t vehicles_per_region = 40;
  std::size_t rounds = 40;
  /// Tail window for steady-state error metrics (must be <= rounds).
  std::size_t tail_rounds = 10;
  /// Privacy sensitivity of every region. 4.0 reproduces the bench plant
  /// whose clean loop saturates at share-everything; lower values leave the
  /// fixed point interior, where the controller actively enforces the
  /// desired field and a falsified claim distribution actually moves x.
  double beta = 4.0;
  std::uint64_t seed = 11;
};

/// Optional service-layer rider: run the same attacker fraction through a
/// churning ServiceEngine fleet where quarantined attackers leave and
/// rejoin under fresh vehicle ids (ServiceParams::churn_exploit), with or
/// without the keyed-identity suspicion carry-over defense.
struct ServiceTwist {
  /// 0 disables the rider entirely.
  std::size_t epochs = 0;
  double attacker_fraction = 0.2;
  std::size_t exploit_patience = 2;
  bool carry_suspicion = false;
  std::uint64_t seed = 23;
};

struct ScenarioConfig {
  std::string name;
  std::string summary;
  PlantConfig plant;
  AttackKind attack = AttackKind::kNone;
  /// Read when attack == kStatic; must satisfy any() then.
  byzantine::AdversaryParams static_attack;
  /// Read when attack == kAdaptive; must satisfy any() then.
  byzantine::AdaptiveAdversaryParams adaptive_attack;
  DefenseKind defense = DefenseKind::kRobust;
  /// Trust layer knobs; forced enabled iff defense == kTrust.
  byzantine::TrustParams trust;
  ServiceTwist service;
  /// Degraded inter-region transport (SystemParams::net): drop/delay/
  /// duplicate/reorder rates, retry budget, bounded staleness, partition
  /// windows. Inert by default, so pre-existing scenarios run the exact
  /// synchronous exchange they always did.
  net::NetParams net;

  /// Range-checks the whole wiring (FaultParams pattern), including the
  /// nested attack / trust / reputation params that are actually in play.
  /// ContractViolation on the first bad field.
  void validate() const;

  /// The pipeline wiring implied by `defense` (aggregation mode, rejection,
  /// quarantine enforcement, trust enablement).
  byzantine::PipelineOptions pipeline_options() const;
};

/// The canonical registry: every named scenario the suite ships. Stable
/// order, unique names; each entry passes validate().
const std::vector<ScenarioConfig>& scenario_catalog();

/// Registry lookup; nullptr when the name is unknown.
const ScenarioConfig* find_scenario(std::string_view name);

/// What one scenario run produced.
struct ScenarioResult {
  /// Sharing-ratio trajectory, [round][region].
  std::vector<std::vector<double>> x;
  /// Post-revision honest truth per round (attackers excluded).
  std::vector<core::GameState> honest;
  /// The cloud's aggregated p(share-everything) per round and region.
  std::vector<std::vector<double>> observed0;
  std::size_t quarantined = 0;
  std::size_t distrusted = 0;
  std::size_t adaptive_dormant = 0;  // final-round dormant attacker count
  std::size_t outliers_rejected = 0;
  double precision = 1.0;  // quarantine+distrust flags vs designated set
  double recall = 1.0;
  /// Service rider outcomes (all zero when service.epochs == 0).
  std::uint64_t exploit_rejoins = 0;
  std::size_t service_quarantined = 0;

  /// Deception error: mean over the tail window and all regions of
  /// |observed p(share-everything) - honest truth|. Exactly 0 once every
  /// attacker is excluded from the aggregate (the cloud's picture IS the
  /// honest cohort); nonzero while falsified claims survive in it. This is
  /// the headline break/hold metric of the adaptive sweep.
  double observed_error_tail = 0.0;

  /// Mean over the tail window and all regions of |x - clean.x| where
  /// `clean` is the same plant with the attack removed. Filled by
  /// run_scenario_vs_clean; 0 from run_scenario.
  double ratio_error_tail = 0.0;
};

/// Runs the scenario's closed loop. rounds_override > 0 truncates the round
/// budget (the scenario-catalog round-trip test runs every entry briefly).
ScenarioResult run_scenario(const ScenarioConfig& config,
                            std::size_t rounds_override = 0);

/// run_scenario plus a clean twin (attack stripped, same defense and
/// seeds) for the tail-error contrast; fills ratio_error_tail.
ScenarioResult run_scenario_vs_clean(const ScenarioConfig& config,
                                     std::size_t rounds_override = 0);

}  // namespace avcp::scenario
