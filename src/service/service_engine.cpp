#include "service/service_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.h"
#include "common/rng.h"
#include "common/serial.h"

namespace avcp::service {

namespace {

// Stream tags. kInitStream / kStepStream are AgentBasedSim's tags on
// purpose: a zero-churn fleet service must consume the exact same draws in
// the exact same order as the batch simulator, so the two trajectories are
// bit-identical. Service-only consumers get their own tags.
constexpr std::uint64_t kInitStream = 0xA1;
constexpr std::uint64_t kStepStream = 0xA2;
constexpr std::uint64_t kJoinDecisionStream = 0xB1;
constexpr std::uint64_t kAttackerStream = 0xB2;
constexpr std::uint64_t kExploitStream = 0xB3;
constexpr std::uint64_t kSourceSegmentStream = 0xB4;

inline bool valid_rate(double r) noexcept { return r >= 0.0 && r <= 1.0; }

/// i64 <-> u64 via two's complement, for serializing signed load deltas.
inline std::uint64_t encode_i64(std::int64_t v) noexcept {
  return static_cast<std::uint64_t>(v);
}
inline std::int64_t decode_i64(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v);
}

}  // namespace

void ServiceParams::validate() const {
  if (mode == Mode::kFleet) {
    AVCP_EXPECT(vehicles_per_region >= 2);
  }
  AVCP_EXPECT(valid_rate(revision_rate));
  AVCP_EXPECT(imitation_scale > 0.0);
  AVCP_EXPECT(num_threads <= 4096);
  AVCP_EXPECT(valid_rate(attacker_fraction));
  AVCP_EXPECT(valid_rate(churn.leave_rate));
  AVCP_EXPECT(valid_rate(churn.migrate_rate));
  AVCP_EXPECT(valid_rate(churn.join_rate));
  AVCP_EXPECT(degraded.max_step > 0.0 && degraded.max_step <= 1.0);
  AVCP_EXPECT(valid_rate(degraded.decay_target));
  AVCP_EXPECT(degraded.decay_step >= 0.0);
  reputation.validate();
  AVCP_EXPECT(!churn_exploit || mode == Mode::kFleet);
  AVCP_EXPECT(exploit_patience >= 1);
  AVCP_EXPECT(std::isfinite(congestion_alpha) && congestion_alpha >= 0.0);
  // The budget bounds how long maintenance may be shed; an unbounded
  // budget would let an adversarial churn pattern starve re-clustering
  // forever, so cap it explicitly.
  AVCP_EXPECT(staleness_budget <= 1000000);
  net.validate();
  // The backhaul transport rides the per-region report pipeline, which
  // only exists in fleet mode.
  AVCP_EXPECT(!net.active() || mode == Mode::kFleet);
}

void ServiceCounters::save_state(Serializer& s) const {
  s.put_u64(epochs);
  s.put_u64(joins);
  s.put_u64(leaves);
  s.put_u64(migrations);
  s.put_u64(reclusters);
  s.put_u64(recluster_deferred);
  s.put_u64(betweenness_chunks_recomputed);
  s.put_u64(outage_region_epochs);
  s.put_u64(quarantines);
  s.put_u64(releases);
  s.put_u64(exploit_rejoins);
}

void ServiceCounters::load_state(Deserializer& d) {
  epochs = d.get_u64();
  joins = d.get_u64();
  leaves = d.get_u64();
  migrations = d.get_u64();
  reclusters = d.get_u64();
  recluster_deferred = d.get_u64();
  betweenness_chunks_recomputed = d.get_u64();
  outage_region_epochs = d.get_u64();
  quarantines = d.get_u64();
  releases = d.get_u64();
  exploit_rejoins = d.get_u64();
}

ServiceEngine::ServiceEngine(const core::MultiRegionGame& game,
                             core::Controller& inner,
                             const roadnet::RoadGraph* graph,
                             ServiceParams params,
                             const faults::FaultModel* faults)
    : game_(game),
      graph_(graph),
      params_(params),
      inert_faults_(faults::FaultParams{}),
      faults_(faults != nullptr ? faults : &inert_faults_),
      events_(params.churn),
      pool_(ThreadPool::clamped_lanes(params.num_threads)) {
  params_.validate();
  controller_.emplace(inner, *faults_, params_.degraded);
  if (params_.mode == ServiceParams::Mode::kFleet) {
    AVCP_EXPECT(graph_ != nullptr);
    AVCP_EXPECT(graph_->finalized());
    cluster::IncrementalClusteringOptions copts;
    copts.clustering.num_regions =
        static_cast<std::uint32_t>(game_.num_regions());
    copts.betweenness.num_threads = params_.num_threads;
    copts.congestion_alpha = params_.congestion_alpha;
    clustering_.emplace(*graph_, copts);
    pending_.assign(graph_->num_segments(), 0);
  }
  members_.resize(game_.num_regions());
  before_.resize(game_.num_regions());
  down_.assign(game_.num_regions(), 0);
  cost_.resize(game_.num_regions());
  q_.resize(game_.num_regions());
  if (params_.mode == ServiceParams::Mode::kFleet && params_.net.active()) {
    // Star backhaul: region r owns link r toward the cloud hub, which sits
    // at node id num_regions so partition windows can cut any subset of
    // regions away from it.
    link_model_.emplace(params_.net);
    const auto cloud = static_cast<std::uint32_t>(game_.num_regions());
    channel_.emplace(*link_model_, cloud + 1);
    for (core::RegionId r = 0; r < game_.num_regions(); ++r) {
      const std::uint32_t link =
          channel_->add_link(static_cast<std::uint32_t>(r), cloud);
      AVCP_ENSURE(link == r);
    }
    report_rings_.assign(
        game_.num_regions(),
        std::vector<ReportSlot>(params_.net.ring_slots()));
    fresh_.assign(game_.num_regions(), 0);
  }
}

bool ServiceEngine::designated_attacker(std::uint64_t identity) const noexcept {
  // Keyed on the stable identity, not the current id: a churn-exploit
  // rejoin mints a fresh id but the vehicle stays the attacker it was.
  // identity == id for every first join, so pre-exploit trajectories are
  // bit-identical to the id-keyed designation.
  if (params_.attacker_fraction <= 0.0) return false;
  Rng rng(derive_seed(params_.seed, {kAttackerStream, identity}));
  return rng.uniform() < params_.attacker_fraction;
}

void ServiceEngine::init(const core::GameState& initial,
                         std::vector<double> x0) {
  AVCP_EXPECT(initial.p.size() == game_.num_regions());
  AVCP_EXPECT(x0.size() == game_.num_regions());

  epoch_ = 0;
  next_id_ = 0;
  staleness_ = 0;
  counters_ = {};
  state_ = initial;
  observed_ = initial;
  x_ = std::move(x0);
  controller_->reset();
  if (channel_) {
    channel_->reset();
    for (std::vector<ReportSlot>& ring : report_rings_) {
      for (ReportSlot& slot : ring) {
        slot.epoch = net::ExchangeChannel::kNothing;
        slot.row.clear();
      }
    }
  }
  std::fill(down_.begin(), down_.end(), 0);
  fleet_.clear();

  if (params_.mode == ServiceParams::Mode::kMeanField) return;

  // Region-major fleet seeding over the clustering's current regions, one
  // init stream per region — AgentBasedSim::init_from with epoch 0.
  const cluster::Clustering& cl = clustering_->clustering();
  for (core::RegionId r = 0; r < game_.num_regions(); ++r) {
    core::check_distribution(initial.p[r]);
    Rng rng(derive_seed(params_.seed, {kInitStream, 0, r}));
    const std::vector<roadnet::SegmentId>& segs = cl.members[r];
    AVCP_EXPECT(!segs.empty());
    for (std::size_t j = 0; j < params_.vehicles_per_region; ++j) {
      VehicleRecord rec;
      rec.id = next_id_++;
      rec.identity = rec.id;
      rec.segment = segs[j % segs.size()];
      rec.region = r;
      rec.decision =
          static_cast<core::DecisionId>(rng.weighted_index(initial.p[r]));
      rec.attacker = designated_attacker(rec.identity);
      fleet_.push_back(rec);
    }
  }

  // Seed the congestion picture with the initial placement, then re-derive
  // every vehicle's region in case the load-coupled weights moved a
  // boundary during set_loads.
  std::vector<std::int64_t> loads(graph_->num_segments(), 0);
  for (const VehicleRecord& rec : fleet_) ++loads[rec.segment];
  clustering_->set_loads(loads);
  std::fill(pending_.begin(), pending_.end(), 0);
  reassign_regions();
}

void ServiceEngine::init_from_source(const core::GameState& initial,
                                     std::vector<double> x0,
                                     core::FleetSource& source,
                                     std::size_t ingest_batch) {
  AVCP_EXPECT(params_.mode == ServiceParams::Mode::kFleet);
  AVCP_EXPECT(initial.p.size() == game_.num_regions());
  AVCP_EXPECT(x0.size() == game_.num_regions());
  AVCP_EXPECT(ingest_batch >= 1);
  for (const auto& row : initial.p) core::check_distribution(row);

  epoch_ = 0;
  next_id_ = 0;
  staleness_ = 0;
  counters_ = {};
  state_ = initial;
  observed_ = initial;
  x_ = std::move(x0);
  controller_->reset();
  if (channel_) {
    channel_->reset();
    for (std::vector<ReportSlot>& ring : report_rings_) {
      for (ReportSlot& slot : ring) {
        slot.epoch = net::ExchangeChannel::kNothing;
        slot.row.clear();
      }
    }
  }
  std::fill(down_.begin(), down_.end(), 0);
  fleet_.clear();

  const std::size_t num_segments = graph_->num_segments();
  const std::vector<cluster::RegionId>& region_of =
      clustering_->clustering().region_of;
  std::vector<core::VehicleSeed> batch(ingest_batch);
  for (;;) {
    const std::size_t got = source.next_batch(batch);
    for (std::size_t i = 0; i < got; ++i) {
      const core::VehicleSeed& seed = batch[i];
      AVCP_EXPECT(seed.decision < game_.num_decisions());
      VehicleRecord rec;
      rec.id = next_id_++;  // service ids stay monotone whatever the source
      rec.identity = rec.id;
      // Placement from a per-source-id hash stream: independent of how the
      // pull was batched, so any ingest_batch yields the same fleet.
      Rng rng(derive_seed(params_.seed, {kSourceSegmentStream, seed.id}));
      rec.segment = static_cast<roadnet::SegmentId>(
          rng.uniform_int(0, static_cast<std::int64_t>(num_segments) - 1));
      rec.region = region_of[rec.segment];
      rec.decision = seed.decision;
      rec.attacker = designated_attacker(rec.identity);
      fleet_.push_back(rec);
    }
    if (got < batch.size()) break;
  }
  AVCP_EXPECT(fleet_.size() >= 2);

  std::vector<std::int64_t> loads(num_segments, 0);
  for (const VehicleRecord& rec : fleet_) ++loads[rec.segment];
  clustering_->set_loads(loads);
  std::fill(pending_.begin(), pending_.end(), 0);
  reassign_regions();
}

void ServiceEngine::apply_churn(std::size_t e, std::size_t& events) {
  if (!events_.active()) return;
  const std::size_t num_segments = graph_->num_segments();

  // Leaves first: a vehicle that leaves this epoch neither migrates nor
  // revises. erase_if keeps the id order intact.
  std::size_t left = 0;
  std::erase_if(fleet_, [&](const VehicleRecord& rec) {
    if (!events_.vehicle_leaves(e, rec.id)) return false;
    --pending_[rec.segment];
    ++left;
    return true;
  });

  std::size_t migrated = 0;
  for (VehicleRecord& rec : fleet_) {
    if (!events_.vehicle_migrates(e, rec.id)) continue;
    const roadnet::SegmentId target =
        events_.migrate_target(e, rec.id, num_segments);
    if (target == rec.segment) continue;
    --pending_[rec.segment];
    ++pending_[target];
    rec.segment = target;
    rec.region = clustering_->clustering().region_of[target];
    ++migrated;
  }

  const std::size_t joining = events_.joins(e);
  for (std::size_t slot = 0; slot < joining; ++slot) {
    VehicleRecord rec;
    rec.id = next_id_++;
    rec.identity = rec.id;
    rec.segment = events_.join_segment(e, slot, num_segments);
    rec.region = clustering_->clustering().region_of[rec.segment];
    // A joiner adopts a decision drawn from its region's latest truth —
    // it calibrates against the traffic it merges into.
    Rng rng(derive_seed(params_.seed, {kJoinDecisionStream, e, rec.id}));
    rec.decision =
        static_cast<core::DecisionId>(rng.weighted_index(state_.p[rec.region]));
    rec.attacker = designated_attacker(rec.identity);
    ++pending_[rec.segment];
    fleet_.push_back(rec);  // ids are monotone: order stays sorted
  }

  counters_.leaves += left;
  counters_.migrations += migrated;
  counters_.joins += joining;
  events = left + migrated + joining;
}

void ServiceEngine::maintain_clustering(std::size_t e, std::size_t events) {
  (void)e;
  bool pending_any = false;
  for (const std::int64_t p : pending_) {
    if (p != 0) {
      pending_any = true;
      break;
    }
  }
  if (!pending_any) {
    staleness_ = 0;
    return;
  }
  // Overload shedding: a heavy-churn epoch defers the (comparatively
  // expensive) centrality + clustering refresh, but the staleness budget
  // bounds how many epochs in a row may do so.
  if (events > params_.overload_events &&
      staleness_ < params_.staleness_budget) {
    ++staleness_;
    ++counters_.recluster_deferred;
    return;
  }
  deltas_.clear();
  for (roadnet::SegmentId s = 0; s < pending_.size(); ++s) {
    if (pending_[s] == 0) continue;
    deltas_.push_back({s, static_cast<std::int32_t>(pending_[s])});
    pending_[s] = 0;
  }
  const auto stats = clustering_->apply(deltas_);
  counters_.betweenness_chunks_recomputed += stats.chunks_recomputed;
  staleness_ = 0;
  if (stats.reclustered) {
    ++counters_.reclusters;
    reassign_regions();
  }
}

void ServiceEngine::reassign_regions() {
  const std::vector<cluster::RegionId>& region_of =
      clustering_->clustering().region_of;
  for (VehicleRecord& rec : fleet_) {
    rec.region = region_of[rec.segment];
  }
}

void ServiceEngine::rebuild_members() {
  for (std::vector<std::size_t>& m : members_) m.clear();
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    members_[fleet_[i].region].push_back(i);
  }
}

void ServiceEngine::snapshot_states() {
  const std::size_t K = game_.num_decisions();
  for (core::RegionId r = 0; r < game_.num_regions(); ++r) {
    const std::vector<std::size_t>& m = members_[r];
    // An emptied region holds its last known rows: the game still needs a
    // distribution for neighbour coupling, and "last known" is the least
    // surprising stand-in (exactly what the cloud would assume too).
    if (m.empty()) continue;
    std::vector<double>& truth = state_.p[r];
    truth.assign(K, 0.0);
    for (const std::size_t i : m) truth[fleet_[i].decision] += 1.0;
    for (double& v : truth) v /= static_cast<double>(m.size());

    std::size_t trusted = 0;
    claim_counts_.assign(K, 0.0);
    for (const std::size_t i : m) {
      const VehicleRecord& rec = fleet_[i];
      if (rec.quarantined) continue;  // the cloud discards their reports
      // Free-riders claim the share-everything top (decision 0) — the
      // claim that earns access to the whole pool.
      claim_counts_[rec.attacker ? 0 : rec.decision] += 1.0;
      ++trusted;
    }
    if (trusted == 0) continue;  // all quarantined: hold the last rows
    std::vector<double>& seen = observed_.p[r];
    seen.resize(K);
    for (std::size_t d = 0; d < K; ++d) {
      seen[d] = claim_counts_[d] / static_cast<double>(trusted);
    }
  }
}

void ServiceEngine::revise(std::size_t e) {
  // Churn drifts the fleets apart, so balance the dispatch by live
  // per-region cost (members × classes) instead of region count; the plan
  // depends only on fleet shapes, never on thread count.
  for (core::RegionId r = 0; r < game_.num_regions(); ++r) {
    cost_[r] = static_cast<double>(members_[r].size()) *
               static_cast<double>(game_.num_decisions());
  }
  pool_.parallel_for_weighted(cost_, [&](std::size_t ri) {
    const auto r = static_cast<core::RegionId>(ri);
    if (down_[ri] != 0) return;  // outage: the fleet holds, same as AgentSim
    const std::vector<std::size_t>& m = members_[ri];
    if (m.size() < 2) return;  // nobody to imitate
    game_.region_fitness_into(state_, x_, r, q_[ri]);
    const std::vector<double>& q = q_[ri];
    std::vector<core::DecisionId>& before = before_[ri];
    before.clear();
    for (const std::size_t i : m) before.push_back(fleet_[i].decision);
    Rng rng(derive_seed(params_.seed, {kStepStream, e, r}));
    for (std::size_t v = 0; v < m.size(); ++v) {
      VehicleRecord& rec = fleet_[m[v]];
      // Free-riders hold strategically — and consume no draws, exactly
      // like AgentBasedSim's attacker/defector skip, so the honest fleet's
      // stream position is independent of who attacks.
      if (rec.attacker) continue;
      if (!rng.bernoulli(params_.revision_rate)) continue;
      auto peer = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(m.size()) - 2));
      if (peer >= v) ++peer;
      const core::DecisionId mine = before[v];
      const core::DecisionId theirs = before[peer];
      if (mine == theirs) continue;
      const double gain = q[theirs] - q[mine];
      if (gain <= 0.0) continue;
      const double p_imitate =
          std::min(1.0, params_.imitation_scale * gain);
      if (rng.bernoulli(p_imitate)) rec.decision = theirs;
    }
  });
}

void ServiceEngine::score_reputation(std::size_t e) {
  (void)e;
  const core::DecisionLattice& lattice = game_.lattice();
  const auto sensors = static_cast<double>(lattice.num_sensors());
  const core::DecisionId bottom =
      static_cast<core::DecisionId>(game_.num_decisions() - 1);
  const byzantine::ReputationParams& rp = params_.reputation;
  for (core::RegionId r = 0; r < game_.num_regions(); ++r) {
    if (down_[r] != 0) continue;  // no uploads observed, no evidence
    for (const std::size_t i : members_[r]) {
      VehicleRecord& rec = fleet_[i];
      // Upload-volume residual: the server knows how much data a claim
      // promises at ratio x_r and measures what actually arrived. Honest
      // vehicles upload exactly their claim (residual 0); free-riders
      // claim the top but upload the bottom.
      const core::DecisionId claim = rec.attacker ? 0 : rec.decision;
      const core::DecisionId behaved = rec.attacker ? bottom : rec.decision;
      const double expected =
          x_[r] * static_cast<double>(lattice.cardinality(claim)) / sensors;
      const double actual =
          x_[r] * static_cast<double>(lattice.cardinality(behaved)) / sensors;
      const double score =
          std::min(std::max(expected - actual, 0.0), rp.score_cap);
      rec.smoothed = rp.decay * rec.smoothed + (1.0 - rp.decay) * score;
      // Snap a fully-decayed EWMA to exactly zero so rehab_threshold == 0.0
      // is reachable under the closed-boundary release below (mirrors
      // byzantine::ReputationTracker).
      if (rec.smoothed < 1e-12) rec.smoothed = 0.0;
      if (rec.ever_quarantined && rec.smoothed < rp.decay_floor) {
        rec.smoothed = rp.decay_floor;
      }
      ++rec.observed_epochs;
      if (!rec.quarantined) {
        if (rec.observed_epochs >= rp.min_rounds &&
            rec.smoothed > rp.quarantine_threshold) {
          rec.quarantined = true;
          rec.ever_quarantined = true;
          rec.clean_streak = 0;
          ++counters_.quarantines;
        }
      } else if (rec.smoothed <= rp.rehab_threshold) {
        if (++rec.clean_streak >= rp.rehab_rounds) {
          rec.quarantined = false;
          rec.clean_streak = 0;
          ++counters_.releases;
        }
      } else {
        rec.clean_streak = 0;
      }
      rec.quarantined_streak = rec.quarantined ? rec.quarantined_streak + 1 : 0;
    }
  }
}

void ServiceEngine::apply_churn_exploit(std::size_t e) {
  if (!params_.churn_exploit) return;
  const std::size_t num_segments = graph_->num_segments();

  // A quarantined attacker that has sat out its patience window leaves and
  // immediately rejoins under a fresh id on a hash-derived segment. The
  // record is rebuilt in place (fleet_ stays id-sorted via erase+append in
  // old-id order), so the trajectory is identical at every thread count.
  exploiter_index_.clear();
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    const VehicleRecord& rec = fleet_[i];
    if (rec.attacker && rec.quarantined &&
        rec.quarantined_streak >= params_.exploit_patience) {
      exploiter_index_.push_back(i);
    }
  }
  if (exploiter_index_.empty()) return;

  reborn_.clear();
  reborn_.reserve(exploiter_index_.size());
  for (const std::size_t i : exploiter_index_) {
    VehicleRecord rec = fleet_[i];
    --pending_[rec.segment];
    rec.id = next_id_++;  // fresh id, stable identity
    Rng rng(derive_seed(params_.seed, {kExploitStream, e, rec.identity}));
    rec.segment = static_cast<roadnet::SegmentId>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_segments) - 1));
    rec.region = clustering_->clustering().region_of[rec.segment];
    rec.attacker = designated_attacker(rec.identity);
    if (!params_.carry_suspicion) {
      // Per-id bookkeeping dies with the old id: the rejoin reopens the
      // blind-start window and the attack works.
      rec.smoothed = 0.0;
      rec.clean_streak = 0;
      rec.observed_epochs = 0;
      rec.quarantined = false;
      rec.quarantined_streak = 0;
      rec.ever_quarantined = false;
    }
    ++pending_[rec.segment];
    reborn_.push_back(rec);
    ++counters_.exploit_rejoins;
    ++counters_.leaves;
    ++counters_.joins;
  }

  // Drop the old records, then append the reborn ones: their fresh ids are
  // monotone and larger than every surviving id, so fleet_ stays id-sorted.
  std::size_t next = 0, write = 0;
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    if (next < exploiter_index_.size() && i == exploiter_index_[next]) {
      ++next;
      continue;
    }
    fleet_[write++] = std::move(fleet_[i]);
  }
  fleet_.resize(write);
  for (VehicleRecord& rec : reborn_) fleet_.push_back(std::move(rec));
}

void ServiceEngine::run_epoch() {
  const std::size_t e = epoch_;

  if (params_.mode == ServiceParams::Mode::kMeanField) {
    controller_->next_x_into(state_, x_, x_next_);
    x_.swap(x_next_);
    game_.replicator_step(state_, x_);
    ++epoch_;
    ++counters_.epochs;
    return;
  }

  std::size_t events = 0;
  apply_churn(e, events);
  maintain_clustering(e, events);
  rebuild_members();

  for (core::RegionId r = 0; r < game_.num_regions(); ++r) {
    down_[r] = faults_->region_down(e, r) ? 1 : 0;
    counters_.outage_region_epochs += down_[r];
  }

  snapshot_states();
  if (!channel_) {
    // The controller sees claims, not truth; DegradedController substitutes
    // held reports for regions whose report never arrived this epoch.
    controller_->next_x_into(observed_, x_, x_next_);
  } else {
    // Backhaul step. The fault layer decides whether a report exists at
    // all (loss/outage = nothing enters the wire, exactly like the
    // synchronous path); the transport decides whether an existing report
    // survives the wire. With an undegraded wire every published report
    // lands in its own epoch, so fresh_ equals the fault layer's verdict
    // and the ingested rows are exact copies — bit-identical trajectories
    // under any FaultModel.
    const std::size_t m = game_.num_regions();
    for (core::RegionId r = 0; r < m; ++r) {
      if (!faults_->report_available(e, r)) continue;
      ReportSlot& slot = report_rings_[r][e % report_rings_[r].size()];
      slot.epoch = e;
      slot.row = observed_.p[r];
      channel_->publish(static_cast<std::uint32_t>(r), e);
    }
    channel_->resolve_round(e);
    net_observed_.p.resize(m);
    fresh_.assign(m, 0);
    for (core::RegionId r = 0; r < m; ++r) {
      // A fault-layer loss is never papered over from the ring: both paths
      // treat the region as blind this epoch. Only wire losses fall back
      // to the newest delivered report within max_staleness.
      const std::uint64_t pe =
          faults_->report_available(e, r)
              ? channel_->consumable(static_cast<std::uint32_t>(r), e)
              : net::ExchangeChannel::kNothing;
      if (pe == net::ExchangeChannel::kNothing) {
        net_observed_.p[r] = observed_.p[r];  // ignored: region is blind
        continue;
      }
      const ReportSlot& slot = report_rings_[r][pe % report_rings_[r].size()];
      AVCP_ENSURE(slot.epoch == pe);
      net_observed_.p[r] = slot.row;
      fresh_[r] = 1;
    }
    controller_->next_x_into(net_observed_, x_, x_next_, fresh_.data());
  }
  x_.swap(x_next_);
  revise(e);
  score_reputation(e);
  apply_churn_exploit(e);

  ++epoch_;
  ++counters_.epochs;
}

std::size_t ServiceEngine::quarantined_count() const {
  std::size_t n = 0;
  for (const VehicleRecord& rec : fleet_) n += rec.quarantined ? 1 : 0;
  return n;
}

void ServiceEngine::save_state(Serializer& s) const {
  // Configuration fingerprint: a snapshot from a differently-built service
  // must be rejected, not applied.
  s.put_u64(params_.seed);
  s.put_u8(static_cast<std::uint8_t>(params_.mode));
  s.put_u64(game_.num_regions());
  s.put_u64(graph_ != nullptr ? graph_->num_segments() : 0);
  s.put_bool(params_.churn_exploit);
  s.put_bool(params_.carry_suspicion);
  s.put_bool(channel_.has_value());

  s.put_u64(epoch_);
  s.put_u64(next_id_);
  s.put_u64(staleness_);

  s.put_u64(fleet_.size());
  for (const VehicleRecord& rec : fleet_) {
    s.put_u64(rec.id);
    s.put_u64(rec.identity);
    s.put_u32(rec.segment);
    s.put_u32(rec.region);
    s.put_u32(rec.decision);
    s.put_bool(rec.attacker);
    s.put_bool(rec.quarantined);
    s.put_f64(rec.smoothed);
    s.put_u64(rec.clean_streak);
    s.put_u64(rec.observed_epochs);
    s.put_u64(rec.quarantined_streak);
    s.put_bool(rec.ever_quarantined);
  }

  put_f64_vec(s, x_);
  state_.save_state(s);
  observed_.save_state(s);
  put_u8_vec(s, down_);

  if (clustering_) {
    std::vector<std::uint64_t> pend(pending_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      pend[i] = encode_i64(pending_[i]);
    }
    put_u64_vec(s, pend);
    std::vector<std::uint64_t> loads(clustering_->loads().size());
    for (std::size_t i = 0; i < loads.size(); ++i) {
      loads[i] = encode_i64(clustering_->loads()[i]);
    }
    put_u64_vec(s, loads);
  }

  controller_->save_state(s);
  counters_.save_state(s);

  if (channel_) {
    // In-flight backhaul: the channel's metadata plus the payload rings,
    // so a resume mid-partition replays the exact same deliveries.
    channel_->save_state(s);
    for (const std::vector<ReportSlot>& ring : report_rings_) {
      for (const ReportSlot& slot : ring) {
        s.put_u64(slot.epoch);
        if (slot.epoch == net::ExchangeChannel::kNothing) continue;
        put_f64_vec(s, slot.row);
      }
    }
  }
}

void ServiceEngine::load_state(Deserializer& d) {
  Deserializer::check(d.get_u64() == params_.seed,
                      "service snapshot: seed mismatch");
  Deserializer::check(d.get_u8() == static_cast<std::uint8_t>(params_.mode),
                      "service snapshot: mode mismatch");
  Deserializer::check(d.get_u64() == game_.num_regions(),
                      "service snapshot: region count mismatch");
  Deserializer::check(
      d.get_u64() == (graph_ != nullptr ? graph_->num_segments() : 0),
      "service snapshot: segment count mismatch");
  Deserializer::check(d.get_bool() == params_.churn_exploit,
                      "service snapshot: churn_exploit mismatch");
  Deserializer::check(d.get_bool() == params_.carry_suspicion,
                      "service snapshot: carry_suspicion mismatch");
  Deserializer::check(d.get_bool() == channel_.has_value(),
                      "service snapshot: net transport wiring mismatch");

  epoch_ = d.get_u64();
  next_id_ = d.get_u64();
  staleness_ = d.get_u64();

  const std::uint64_t fleet_size = d.get_u64();
  std::vector<VehicleRecord> fleet;
  fleet.reserve(fleet_size);
  std::uint64_t prev_id = 0;
  for (std::uint64_t i = 0; i < fleet_size; ++i) {
    VehicleRecord rec;
    rec.id = d.get_u64();
    Deserializer::check(i == 0 || rec.id > prev_id,
                        "service snapshot: fleet ids out of order");
    Deserializer::check(rec.id < next_id_,
                        "service snapshot: vehicle id beyond id counter");
    prev_id = rec.id;
    rec.identity = d.get_u64();
    Deserializer::check(rec.identity <= rec.id,
                        "service snapshot: identity newer than id");
    rec.segment = d.get_u32();
    Deserializer::check(
        graph_ == nullptr || rec.segment < graph_->num_segments(),
        "service snapshot: segment out of range");
    rec.region = d.get_u32();
    Deserializer::check(rec.region < game_.num_regions(),
                        "service snapshot: region out of range");
    rec.decision = d.get_u32();
    Deserializer::check(rec.decision < game_.num_decisions(),
                        "service snapshot: decision out of range");
    rec.attacker = d.get_bool();
    rec.quarantined = d.get_bool();
    rec.smoothed = d.get_f64();
    rec.clean_streak = d.get_u64();
    rec.observed_epochs = d.get_u64();
    rec.quarantined_streak = d.get_u64();
    rec.ever_quarantined = d.get_bool();
    fleet.push_back(rec);
  }

  std::vector<double> x = get_f64_vec(d);
  Deserializer::check(x.size() == game_.num_regions(),
                      "service snapshot: ratio size mismatch");
  core::GameState state;
  state.load_state(d);
  Deserializer::check(state.p.size() == game_.num_regions(),
                      "service snapshot: state shape mismatch");
  core::GameState observed;
  observed.load_state(d);
  Deserializer::check(observed.p.size() == game_.num_regions(),
                      "service snapshot: observed shape mismatch");
  std::vector<std::uint8_t> down = get_u8_vec(d);
  Deserializer::check(down.size() == game_.num_regions(),
                      "service snapshot: outage flags shape mismatch");

  if (clustering_) {
    std::vector<std::uint64_t> pend = get_u64_vec(d);
    Deserializer::check(pend.size() == graph_->num_segments(),
                        "service snapshot: pending deltas shape mismatch");
    std::vector<std::uint64_t> raw_loads = get_u64_vec(d);
    Deserializer::check(raw_loads.size() == graph_->num_segments(),
                        "service snapshot: loads shape mismatch");
    std::vector<std::int64_t> loads(raw_loads.size());
    for (std::size_t i = 0; i < raw_loads.size(); ++i) {
      loads[i] = decode_i64(raw_loads[i]);
      Deserializer::check(loads[i] >= 0,
                          "service snapshot: negative segment load");
    }
    // Rebuilding from loads is bit-equal to the pre-crash clustering by
    // the incremental-equivalence contract.
    clustering_->set_loads(loads);
    for (std::size_t i = 0; i < pend.size(); ++i) {
      pending_[i] = decode_i64(pend[i]);
    }
  }

  controller_->load_state(d);
  counters_.load_state(d);

  if (channel_) {
    channel_->load_state(d);
    for (std::vector<ReportSlot>& ring : report_rings_) {
      for (ReportSlot& slot : ring) {
        slot.epoch = d.get_u64();
        if (slot.epoch == net::ExchangeChannel::kNothing) {
          slot.row.clear();
          continue;
        }
        slot.row = get_f64_vec(d);
        Deserializer::check(slot.row.size() == game_.num_decisions(),
                            "service snapshot: report row shape mismatch");
      }
    }
  }

  fleet_ = std::move(fleet);
  x_ = std::move(x);
  state_ = std::move(state);
  observed_ = std::move(observed);
  down_ = std::move(down);
}

}  // namespace avcp::service
