// Long-running consensus service over a churning fleet (service layer).
//
// Every engine below src/sim is a batch: fix a fleet, run T rounds, return.
// ServiceEngine is the deployment shape — an epoch loop that keeps serving
// FDS control decisions while the world changes under it:
//
//   churn      vehicles Join / Leave / Migrate per a seeded deterministic
//              EventStream; per-vehicle state (decision, EWMA reputation,
//              quarantine status) rides in a VehicleRecord keyed by a
//              stable id, so it follows the vehicle across regions;
//   clustering region membership derives from road segments through an
//              IncrementalClustering whose congestion-scaled weights shift
//              with the per-segment vehicle loads; betweenness and
//              Algorithm 1 refresh incrementally on the load deltas, with
//              a from-scratch-equivalence contract at every epoch;
//   faults     a region outage (faults::FaultModel) freezes that region's
//              fleet for the epoch and starves the cloud of its report;
//              the owned DegradedController reroutes — holding or decaying
//              the region's ratio within the smoothness bound — instead of
//              acting on garbage;
//   overload   an epoch with more churn events than `overload_events`
//              sheds its re-clustering work, deferring the load deltas; a
//              bounded staleness budget caps how many consecutive epochs
//              may defer before maintenance is forced;
//   byzantine  a seeded fraction of vehicles free-ride: they claim the
//              share-everything decision while uploading nothing and never
//              revising. The service scores each vehicle's upload-volume
//              residual (expected-under-claim minus observed), folds it
//              into a per-vehicle EWMA, and quarantines persistent
//              offenders — quarantined reports are excluded from the
//              observed state the controller acts on.
//
// Determinism contract: every stochastic draw comes from a pure hash or a
// counter-based stream keyed by (seed, stream, epoch, region-or-id), and
// per-region revision fans out over a ThreadPool with no cross-region
// reduction — the trajectory is bit-identical at every thread count. With
// churn off, congestion_alpha == 0, and no attackers, a kFleet service is
// bit-identical to AgentBasedSim driven by the same wrapped controller
// (the epoch loop IS the paper's round loop, one epoch per round), and a
// kMeanField service is bit-identical to sim::run_mean_field; with churn
// on, save_state/load_state extend the PR-5 checkpoint format (section
// kSectionService) so a killed service resumes mid-stream bit-identically.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "byzantine/reputation.h"
#include "cluster/incremental_clustering.h"
#include "common/thread_pool.h"
#include "core/fds.h"
#include "core/fleet_stream.h"
#include "core/game.h"
#include "faults/degraded_controller.h"
#include "faults/fault_model.h"
#include "net/exchange_channel.h"
#include "roadnet/road_graph.h"
#include "service/events.h"

namespace avcp::service {

struct ServiceParams {
  enum class Mode : std::uint8_t {
    kFleet = 0,      // per-vehicle fleet with imitation revision
    kMeanField = 1,  // replicator dynamics on the distribution itself
  };
  Mode mode = Mode::kFleet;

  /// Initial fleet: this many vehicles seeded into every region (>= 2 in
  /// kFleet mode; ignored by kMeanField).
  std::size_t vehicles_per_region = 50;
  /// Revision dynamics, matching AgentSimParams semantics exactly.
  double revision_rate = 1.0;
  double imitation_scale = 1.0;
  std::uint64_t seed = 99;
  /// Worker lanes for per-region epoch work; bit-identical at every value.
  std::size_t num_threads = 1;

  /// Fraction of vehicles (per pure *identity* hash) that free-ride: claim
  /// the share-everything decision, upload nothing, never revise.
  double attacker_fraction = 0.0;

  /// Churn-exploit attack (kFleet only): a quarantined attacker that has
  /// sat out exploit_patience consecutive quarantined epochs leaves and
  /// immediately rejoins on a hash-derived segment under a FRESH vehicle
  /// id — wiping its per-id reputation record and reopening the
  /// blind-start window, unless the defense below is on.
  bool churn_exploit = false;
  std::size_t exploit_patience = 2;
  /// Keyed-identity defense: VehicleRecord::identity is stable across the
  /// exploit rejoin, and with this flag the reputation record (EWMA,
  /// streaks, observation count, quarantine status) rides along with the
  /// identity instead of resetting with the id — the rejoin buys the
  /// attacker nothing.
  bool carry_suspicion = false;

  ChurnParams churn;
  faults::DegradedOptions degraded;
  byzantine::ReputationParams reputation;

  /// Load-to-weight coupling of the incremental clustering
  /// (IncrementalClusteringOptions::congestion_alpha). 0 freezes the
  /// clustering for the whole run.
  double congestion_alpha = 0.0;
  /// Epochs with more churn events than this shed re-clustering work
  /// (deltas are deferred, not dropped).
  std::size_t overload_events = ~std::size_t{0};
  /// Max consecutive shed epochs before maintenance is forced. Bounds how
  /// stale the clustering the controller acts on can ever be.
  std::size_t staleness_budget = 4;

  /// Degraded backhaul between the regions and the cloud (kFleet only).
  /// When net.active(), every region's per-epoch decision report travels a
  /// region->cloud link of a net::ExchangeChannel: reports can be dropped,
  /// delayed, duplicated, or cut by a partition window, with bounded
  /// retries. The cloud consumes the newest report at most
  /// net.max_staleness epochs old and feeds the per-region freshness
  /// verdict to the DegradedController, which bounds how long a blind
  /// region may coast. With zero degradation the epoch trajectory is
  /// bit-identical to the synchronous path.
  net::NetParams net;

  void validate() const;  // throws ContractViolation on any bad field
};

/// A vehicle's complete cross-epoch state, keyed by a stable monotone id.
/// Migration moves the record between regions intact — reputation history
/// is a property of the vehicle, not of its current region slot.
struct VehicleRecord {
  std::uint64_t id = 0;
  /// Stable identity key: equals the id assigned at the vehicle's FIRST
  /// join and survives a churn-exploit leave/rejoin that mints a fresh id.
  /// Attacker designation and (with carry_suspicion) the reputation record
  /// are keyed on it — identity, not id, is what the cloud holds to
  /// account.
  std::uint64_t identity = 0;
  roadnet::SegmentId segment = 0;
  core::RegionId region = 0;
  core::DecisionId decision = 0;
  bool attacker = false;
  bool quarantined = false;
  double smoothed = 0.0;           // reputation EWMA
  std::uint64_t clean_streak = 0;  // consecutive sub-rehab epochs
  std::uint64_t observed_epochs = 0;
  /// Consecutive epochs spent quarantined (drives the exploit trigger).
  std::uint64_t quarantined_streak = 0;
  /// Quarantined at least once (drives ReputationParams::decay_floor).
  bool ever_quarantined = false;

  friend bool operator==(const VehicleRecord&, const VehicleRecord&) = default;
};

/// Cumulative liveness accounting; serialized with the engine so a
/// resumed run reports the same totals as an uninterrupted one.
struct ServiceCounters {
  std::uint64_t epochs = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t migrations = 0;
  std::uint64_t reclusters = 0;
  std::uint64_t recluster_deferred = 0;
  std::uint64_t betweenness_chunks_recomputed = 0;
  std::uint64_t outage_region_epochs = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t releases = 0;
  /// Churn-exploit leave/rejoin cycles executed by quarantined attackers.
  std::uint64_t exploit_rejoins = 0;

  friend bool operator==(const ServiceCounters&,
                         const ServiceCounters&) = default;

  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);
};

class ServiceEngine {
 public:
  /// `game`, `inner`, `graph`, and `faults` must outlive the engine. The
  /// engine owns the DegradedController wrapped around `inner` (an inert
  /// FaultModel is substituted when `faults` is null, so the wrapper is
  /// always in the loop and zero-fault runs stay bit-comparable to faulted
  /// ones). `graph` is required in kFleet mode — region membership derives
  /// from road segments through the incremental clustering, whose region
  /// count must match the game's — and ignored by kMeanField.
  ServiceEngine(const core::MultiRegionGame& game, core::Controller& inner,
                const roadnet::RoadGraph* graph, ServiceParams params,
                const faults::FaultModel* faults = nullptr);

  /// Cold start at epoch 0: seeds the fleet (kFleet) from `initial`'s
  /// per-region distributions using AgentBasedSim's init streams, resets
  /// the controller wrapper, loads, and counters.
  void init(const core::GameState& initial, std::vector<double> x0);

  /// Streaming cold start (kFleet only): the fleet is ingested from a
  /// core::FleetSource in `ingest_batch`-sized pulls instead of being
  /// synthesized region-major. Decisions come from the source; each
  /// vehicle's road segment comes from a pure per-source-id hash stream,
  /// so the resulting fleet is independent of the batch size (city-scale
  /// traces can stream in without ever materializing a seed list).
  void init_from_source(const core::GameState& initial,
                        std::vector<double> x0, core::FleetSource& source,
                        std::size_t ingest_batch = 4096);

  /// One epoch: churn -> clustering maintenance -> snapshot -> control ->
  /// revision -> reputation. Requires init() or load_state() first.
  void run_epoch();

  std::size_t epoch() const noexcept { return epoch_; }
  const ServiceParams& params() const noexcept { return params_; }
  /// Empirical (kFleet) or mean-field (kMeanField) truth at last snapshot.
  const core::GameState& true_state() const noexcept { return state_; }
  /// What the cloud saw: claimed decisions, quarantined vehicles excluded.
  const core::GameState& observed_state() const noexcept { return observed_; }
  const std::vector<double>& x() const noexcept { return x_; }
  const std::vector<VehicleRecord>& fleet() const noexcept { return fleet_; }
  const ServiceCounters& counters() const noexcept { return counters_; }
  const faults::DegradedController& controller() const {
    return *controller_;
  }
  /// Null in kMeanField mode.
  const cluster::IncrementalClustering* clustering() const noexcept {
    return clustering_ ? &*clustering_ : nullptr;
  }
  /// Deferred-epoch streak of the clustering maintenance (0 = fresh).
  std::size_t staleness() const noexcept { return staleness_; }
  std::size_t quarantined_count() const;
  /// Backhaul transport counters; null when params().net is inert.
  const net::ExchangeChannel* channel() const noexcept {
    return channel_ ? &*channel_ : nullptr;
  }

  /// Checkpoint hooks (section checkpoint::kSectionService). load_state
  /// rejects snapshots from a differently-configured service and rebuilds
  /// the clustering from the serialized loads — equal to the pre-crash one
  /// by the incremental-equivalence contract.
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);

 private:
  bool designated_attacker(std::uint64_t identity) const noexcept;
  void apply_churn(std::size_t e, std::size_t& events);
  void apply_churn_exploit(std::size_t e);
  void maintain_clustering(std::size_t e, std::size_t events);
  void reassign_regions();
  void rebuild_members();
  void snapshot_states();
  void revise(std::size_t e);
  void score_reputation(std::size_t e);

  const core::MultiRegionGame& game_;
  const roadnet::RoadGraph* graph_;
  ServiceParams params_;
  faults::FaultModel inert_faults_;
  const faults::FaultModel* faults_;
  EventStream events_;
  std::optional<faults::DegradedController> controller_;
  std::optional<cluster::IncrementalClustering> clustering_;
  ThreadPool pool_;

  std::size_t epoch_ = 0;
  std::uint64_t next_id_ = 0;
  std::size_t staleness_ = 0;
  std::vector<VehicleRecord> fleet_;  // always sorted by id
  /// Load deltas accumulated while maintenance is shed; indexed by segment.
  std::vector<std::int64_t> pending_;
  /// members_[r] = fleet indices of region r's vehicles, id order. Scratch:
  /// rebuilt each epoch, capacity retained.
  std::vector<std::vector<std::size_t>> members_;
  /// Per-region start-of-epoch decision snapshots (revision scratch).
  std::vector<std::vector<core::DecisionId>> before_;
  std::vector<std::uint8_t> down_;  // this epoch's outage flags
  core::GameState state_;
  core::GameState observed_;
  std::vector<double> x_;
  ServiceCounters counters_;

  /// Degraded backhaul (params_.net.active(), kFleet only): region r
  /// publishes its observed report on link r of a star topology whose hub
  /// is node num_regions (the cloud). The channel carries metadata; the
  /// payload rows live in per-region rings below, sized so any consumable
  /// epoch is still resident.
  std::optional<net::LinkModel> link_model_;
  std::optional<net::ExchangeChannel> channel_;
  struct ReportSlot {
    std::uint64_t epoch = net::ExchangeChannel::kNothing;
    std::vector<double> row;
  };
  std::vector<std::vector<ReportSlot>> report_rings_;
  /// Scratch (not serialized): what the cloud acts on this epoch — the
  /// observed state with each region's row replaced by the newest
  /// consumable report — and the freshness mask handed to the wrapper.
  core::GameState net_observed_;
  std::vector<std::uint8_t> fresh_;

  /// Per-epoch scratch, hoisted so steady-state epochs allocate nothing
  /// once capacities are established: re-clustering deltas, the per-region
  /// claim tally, the weighted dispatch plan, per-region fitness rows, and
  /// the churn-exploit rebirth buffers.
  std::vector<cluster::LoadDelta> deltas_;
  std::vector<double> claim_counts_;
  std::vector<double> x_next_;
  std::vector<double> cost_;
  std::vector<std::vector<double>> q_;
  std::vector<std::size_t> exploiter_index_;
  std::vector<VehicleRecord> reborn_;
};

}  // namespace avcp::service
