#include "service/events.h"

#include <limits>

#include "common/contracts.h"
#include "common/rng.h"

namespace avcp::service {

namespace {

/// Distinct hash streams per event kind, fault-model style.
enum Stream : std::uint64_t {
  kLeave = 0x6c65617665737674ULL,
  kMigrate = 0x6d69677261746573ULL,
  kMigrateTarget = 0x6d69677461726774ULL,
  kJoinCount = 0x6a6f696e636e7473ULL,
  kJoinSegment = 0x6a6f696e73656773ULL,
};

inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t s = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  return splitmix64(s);
}

inline bool valid_rate(double r) noexcept { return r >= 0.0 && r <= 1.0; }

}  // namespace

bool ChurnParams::any() const noexcept {
  return leave_rate > 0.0 || migrate_rate > 0.0 ||
         (join_slots > 0 && join_rate > 0.0);
}

EventStream::EventStream(ChurnParams params)
    : params_(params), active_(params.any()) {
  AVCP_EXPECT(valid_rate(params_.leave_rate));
  AVCP_EXPECT(valid_rate(params_.migrate_rate));
  AVCP_EXPECT(valid_rate(params_.join_rate));
}

double EventStream::hash_uniform(std::uint64_t stream, std::uint64_t a,
                                 std::uint64_t b) const noexcept {
  std::uint64_t h = mix(params_.seed, stream);
  h = mix(h, a);
  h = mix(h, b);
  constexpr double kInv = 1.0 / 18446744073709551616.0;  // 2^-64
  return static_cast<double>(h) * kInv;
}

bool EventStream::vehicle_leaves(std::size_t epoch,
                                 std::uint64_t vehicle) const noexcept {
  if (params_.leave_rate <= 0.0) return false;
  return hash_uniform(kLeave, epoch, vehicle) < params_.leave_rate;
}

bool EventStream::vehicle_migrates(std::size_t epoch,
                                   std::uint64_t vehicle) const noexcept {
  if (params_.migrate_rate <= 0.0) return false;
  return hash_uniform(kMigrate, epoch, vehicle) < params_.migrate_rate;
}

std::size_t EventStream::joins(std::size_t epoch) const {
  if (params_.join_slots == 0 || params_.join_rate <= 0.0) return 0;
  Rng rng(derive_seed(params_.seed, {kJoinCount, epoch}));
  return static_cast<std::size_t>(
      rng.binomial(params_.join_slots, params_.join_rate));
}

roadnet::SegmentId EventStream::migrate_target(
    std::size_t epoch, std::uint64_t vehicle,
    std::size_t num_segments) const noexcept {
  const double u = hash_uniform(kMigrateTarget, epoch, vehicle);
  auto s = static_cast<std::size_t>(u * static_cast<double>(num_segments));
  if (s >= num_segments) s = num_segments - 1;  // u == 1 - ulp edge
  return static_cast<roadnet::SegmentId>(s);
}

roadnet::SegmentId EventStream::join_segment(
    std::size_t epoch, std::size_t slot,
    std::size_t num_segments) const noexcept {
  const double u = hash_uniform(kJoinSegment, epoch, slot);
  auto s = static_cast<std::size_t>(u * static_cast<double>(num_segments));
  if (s >= num_segments) s = num_segments - 1;
  return static_cast<roadnet::SegmentId>(s);
}

}  // namespace avcp::service
