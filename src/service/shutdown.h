// Graceful-shutdown signalling for the service loop.
//
// A supervised service receives SIGTERM (or Ctrl-C's SIGINT) and must not
// die mid-epoch: the run loop finishes the epoch in flight, flushes a final
// checkpoint generation, and exits 0, so the next start resumes exactly
// where this one stopped. The handler only sets a volatile sig_atomic_t
// flag (async-signal-safe, same idiom as checkpoint/policy.h's SIGUSR1
// snapshot request); the loop polls it between epochs.
#pragma once

namespace avcp::service {

/// Installs the flag-setting handler on SIGTERM and SIGINT. Safe to call
/// repeatedly.
void install_shutdown_handlers();

/// True once a shutdown signal arrived (sticky; does not clear).
bool shutdown_requested() noexcept;

/// Clears the flag (tests re-arm between cases).
void reset_shutdown_flag() noexcept;

/// Raises the flag programmatically, as the signal handler would — lets
/// tests exercise the drain-and-flush path without process signals.
void request_shutdown() noexcept;

}  // namespace avcp::service
