#include "service/shutdown.h"

#include <csignal>

namespace avcp::service {

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void on_signal(int /*signum*/) { g_shutdown = 1; }

}  // namespace

void install_shutdown_handlers() {
  std::signal(SIGTERM, &on_signal);
  std::signal(SIGINT, &on_signal);
}

bool shutdown_requested() noexcept { return g_shutdown != 0; }

void reset_shutdown_flag() noexcept { g_shutdown = 0; }

void request_shutdown() noexcept { g_shutdown = 1; }

}  // namespace avcp::service
