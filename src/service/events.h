// Seeded deterministic churn events for the service loop.
//
// A deployed consensus service never sees a fixed fleet: vehicles join the
// network, drive out of coverage, and cross region boundaries continuously.
// EventStream is the single source of truth for *which* vehicle churns
// *when*. Like faults::FaultModel, every per-vehicle predicate is a pure
// hash of (seed, stream, epoch, vehicle id) — no mutable RNG state — so a
// churn schedule is reproducible from one seed regardless of query order,
// thread count, or how many times an epoch is replayed after a crash
// restore. Only the join *count* per epoch draws from a counter-based
// stream (one throwaway engine per epoch, derived by derive_seed), because
// a binomial sample needs more than one uniform.
//
// Leave and migrate predicates key on the vehicle's *identity*, not its
// fleet position, so a vehicle's fate is stable while the fleet around it
// churns — the property that lets reputation state follow vehicles.
#pragma once

#include <cstdint>

#include "roadnet/road_graph.h"

namespace avcp::service {

struct ChurnParams {
  /// Per-vehicle per-epoch probability of leaving the network.
  double leave_rate = 0.0;
  /// Per-vehicle per-epoch probability of relocating to a fresh segment
  /// (possibly crossing a region boundary).
  double migrate_rate = 0.0;
  /// Joins per epoch ~ Binomial(join_slots, join_rate): up to join_slots
  /// candidate vehicles each enter independently with probability
  /// join_rate. Either zero disables joins.
  std::size_t join_slots = 0;
  double join_rate = 0.0;
  std::uint64_t seed = 0;

  /// True if any churn event can ever fire. An all-zero stream keeps the
  /// fleet byte-identical to a fixed-fleet run.
  bool any() const noexcept;
};

class EventStream {
 public:
  explicit EventStream(ChurnParams params);

  const ChurnParams& params() const noexcept { return params_; }
  bool active() const noexcept { return active_; }

  /// The vehicle leaves the network at the start of `epoch`.
  bool vehicle_leaves(std::size_t epoch, std::uint64_t vehicle) const noexcept;

  /// The vehicle relocates at the start of `epoch` (only consulted for
  /// vehicles that do not leave).
  bool vehicle_migrates(std::size_t epoch,
                        std::uint64_t vehicle) const noexcept;

  /// Number of vehicles joining at the start of `epoch`.
  std::size_t joins(std::size_t epoch) const;

  /// Destination segment of a migrating vehicle, uniform over the graph's
  /// segments (pure hash of (epoch, vehicle)).
  roadnet::SegmentId migrate_target(std::size_t epoch, std::uint64_t vehicle,
                                    std::size_t num_segments) const noexcept;

  /// Spawn segment of the `slot`-th joiner of `epoch`.
  roadnet::SegmentId join_segment(std::size_t epoch, std::size_t slot,
                                  std::size_t num_segments) const noexcept;

 private:
  double hash_uniform(std::uint64_t stream, std::uint64_t a,
                      std::uint64_t b) const noexcept;

  ChurnParams params_;
  bool active_;
};

}  // namespace avcp::service
