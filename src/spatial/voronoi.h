// Edge-server deployment and Voronoi cell assignment (paper §III).
//
// Each vehicle uploads to its nearest edge server, so the fixed server
// locations induce a Voronoi partition of the target area. The paper
// deploys 100 servers "evenly" over the Futian box; deploy_grid reproduces
// that layout for an arbitrary count.
#pragma once

#include <cstdint>
#include <vector>

#include "roadnet/road_graph.h"
#include "spatial/grid_index.h"

namespace avcp::spatial {

using ServerId = std::uint32_t;

/// Places `count` servers on the most-square grid covering `area`, centred
/// within their grid tiles (row-major order).
std::vector<PointM> deploy_grid(const BBoxM& area, std::size_t count);

/// Nearest-site Voronoi partition over a set of edge-server positions.
class VoronoiPartition {
 public:
  /// Requires at least one site.
  explicit VoronoiPartition(std::vector<PointM> sites);

  std::size_t num_cells() const noexcept { return index_.size(); }
  const PointM& site(ServerId id) const { return index_.point(id); }

  /// The cell (server) owning a planar point.
  ServerId cell_of(const PointM& p) const;

  /// The cell owning each road segment (by midpoint); indexable by
  /// SegmentId.
  std::vector<ServerId> assign_segments(const roadnet::RoadGraph& g) const;

 private:
  GridIndex index_;
};

}  // namespace avcp::spatial
