// Uniform-grid spatial index over planar points.
//
// Supports exact nearest-neighbour queries via expanding ring search; this
// backs the Voronoi partition (vehicle -> nearest edge server) that Section
// III of the paper uses to scope data sharing to one cell per server.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geo.h"

namespace avcp::spatial {

/// Axis-aligned bounding box in metres.
struct BBoxM {
  PointM min;
  PointM max;

  double width() const noexcept { return max.x - min.x; }
  double height() const noexcept { return max.y - min.y; }
  bool contains(const PointM& p) const noexcept {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// Smallest box containing all points; requires a non-empty set.
  static BBoxM around(const std::vector<PointM>& points);

  /// Returns this box expanded by `margin` metres on every side.
  BBoxM expanded(double margin) const noexcept;
};

class GridIndex {
 public:
  /// Indexes `points` (copied). The grid resolution defaults to roughly one
  /// point per cell. Requires a non-empty point set.
  explicit GridIndex(std::vector<PointM> points);

  std::size_t size() const noexcept { return points_.size(); }
  const PointM& point(std::size_t i) const { return points_[i]; }

  /// Index of the point nearest to `q` (exact; ties broken by lower index).
  std::size_t nearest(const PointM& q) const;

  /// Indices of all points within `radius` metres of `q`.
  std::vector<std::size_t> within(const PointM& q, double radius) const;

 private:
  std::vector<PointM> points_;
  BBoxM bounds_;
  double cell_size_ = 1.0;
  std::size_t cols_ = 1;
  std::size_t rows_ = 1;
  // CSR buckets: cell -> point indices.
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> bucket_items_;

  std::size_t cell_col(double x) const noexcept;
  std::size_t cell_row(double y) const noexcept;
};

}  // namespace avcp::spatial
