#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.h"

namespace avcp::spatial {

BBoxM BBoxM::around(const std::vector<PointM>& points) {
  AVCP_EXPECT(!points.empty());
  BBoxM box{points.front(), points.front()};
  for (const PointM& p : points) {
    box.min.x = std::min(box.min.x, p.x);
    box.min.y = std::min(box.min.y, p.y);
    box.max.x = std::max(box.max.x, p.x);
    box.max.y = std::max(box.max.y, p.y);
  }
  return box;
}

BBoxM BBoxM::expanded(double margin) const noexcept {
  return BBoxM{PointM{min.x - margin, min.y - margin},
               PointM{max.x + margin, max.y + margin}};
}

GridIndex::GridIndex(std::vector<PointM> points) : points_(std::move(points)) {
  AVCP_EXPECT(!points_.empty());
  bounds_ = BBoxM::around(points_).expanded(1.0);
  const double extent = std::max(bounds_.width(), bounds_.height());
  const auto side = static_cast<std::size_t>(
      std::max(1.0, std::floor(std::sqrt(static_cast<double>(points_.size())))));
  cell_size_ = std::max(extent / static_cast<double>(side), 1e-6);
  cols_ = static_cast<std::size_t>(bounds_.width() / cell_size_) + 1;
  rows_ = static_cast<std::size_t>(bounds_.height() / cell_size_) + 1;

  const std::size_t num_cells = cols_ * rows_;
  std::vector<std::uint32_t> counts(num_cells, 0);
  for (const PointM& p : points_) {
    ++counts[cell_row(p.y) * cols_ + cell_col(p.x)];
  }
  offsets_.assign(num_cells + 1, 0);
  for (std::size_t i = 0; i < num_cells; ++i) {
    offsets_[i + 1] = offsets_[i] + counts[i];
  }
  bucket_items_.resize(points_.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const std::size_t cell =
        cell_row(points_[i].y) * cols_ + cell_col(points_[i].x);
    bucket_items_[cursor[cell]++] = static_cast<std::uint32_t>(i);
  }
}

std::size_t GridIndex::cell_col(double x) const noexcept {
  const auto c = static_cast<std::ptrdiff_t>((x - bounds_.min.x) / cell_size_);
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(c, 0, static_cast<std::ptrdiff_t>(cols_) - 1));
}

std::size_t GridIndex::cell_row(double y) const noexcept {
  const auto r = static_cast<std::ptrdiff_t>((y - bounds_.min.y) / cell_size_);
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(r, 0, static_cast<std::ptrdiff_t>(rows_) - 1));
}

std::size_t GridIndex::nearest(const PointM& q) const {
  const auto qc = static_cast<std::ptrdiff_t>(cell_col(q.x));
  const auto qr = static_cast<std::ptrdiff_t>(cell_row(q.y));
  std::size_t best = points_.size();
  double best_dist = std::numeric_limits<double>::infinity();

  const auto scan_cell = [&](std::ptrdiff_t r, std::ptrdiff_t c) {
    if (r < 0 || c < 0 || r >= static_cast<std::ptrdiff_t>(rows_) ||
        c >= static_cast<std::ptrdiff_t>(cols_)) {
      return;
    }
    const std::size_t cell = static_cast<std::size_t>(r) * cols_ +
                             static_cast<std::size_t>(c);
    for (auto i = offsets_[cell]; i < offsets_[cell + 1]; ++i) {
      const std::uint32_t idx = bucket_items_[i];
      const double d = distance_m(points_[idx], q);
      if (d < best_dist || (d == best_dist && idx < best)) {
        best_dist = d;
        best = idx;
      }
    }
  };

  const auto max_ring =
      static_cast<std::ptrdiff_t>(std::max(rows_, cols_));
  for (std::ptrdiff_t ring = 0; ring <= max_ring; ++ring) {
    // Once a candidate exists, a ring whose nearest possible distance
    // exceeds it cannot improve the answer.
    if (best < points_.size() &&
        static_cast<double>(ring - 1) * cell_size_ > best_dist) {
      break;
    }
    if (ring == 0) {
      scan_cell(qr, qc);
      continue;
    }
    for (std::ptrdiff_t c = qc - ring; c <= qc + ring; ++c) {
      scan_cell(qr - ring, c);
      scan_cell(qr + ring, c);
    }
    for (std::ptrdiff_t r = qr - ring + 1; r <= qr + ring - 1; ++r) {
      scan_cell(r, qc - ring);
      scan_cell(r, qc + ring);
    }
  }
  AVCP_ENSURE(best < points_.size());
  return best;
}

std::vector<std::size_t> GridIndex::within(const PointM& q,
                                           double radius) const {
  AVCP_EXPECT(radius >= 0.0);
  std::vector<std::size_t> result;
  const auto r_lo = cell_row(q.y - radius);
  const auto r_hi = cell_row(q.y + radius);
  const auto c_lo = cell_col(q.x - radius);
  const auto c_hi = cell_col(q.x + radius);
  for (std::size_t r = r_lo; r <= r_hi; ++r) {
    for (std::size_t c = c_lo; c <= c_hi; ++c) {
      const std::size_t cell = r * cols_ + c;
      for (auto i = offsets_[cell]; i < offsets_[cell + 1]; ++i) {
        const std::uint32_t idx = bucket_items_[i];
        if (distance_m(points_[idx], q) <= radius) {
          result.push_back(idx);
        }
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace avcp::spatial
