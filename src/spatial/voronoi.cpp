#include "spatial/voronoi.h"

#include <cmath>

#include "common/contracts.h"

namespace avcp::spatial {

std::vector<PointM> deploy_grid(const BBoxM& area, std::size_t count) {
  AVCP_EXPECT(count >= 1);
  AVCP_EXPECT(area.width() > 0.0 && area.height() > 0.0);

  // Pick the grid shape closest to square whose area covers `count`.
  const double aspect = area.width() / area.height();
  auto cols = static_cast<std::size_t>(
      std::max(1.0, std::round(std::sqrt(static_cast<double>(count) * aspect))));
  auto rows = (count + cols - 1) / cols;

  std::vector<PointM> sites;
  sites.reserve(count);
  const double tile_w = area.width() / static_cast<double>(cols);
  const double tile_h = area.height() / static_cast<double>(rows);
  for (std::size_t r = 0; r < rows && sites.size() < count; ++r) {
    for (std::size_t c = 0; c < cols && sites.size() < count; ++c) {
      sites.push_back(PointM{
          area.min.x + (static_cast<double>(c) + 0.5) * tile_w,
          area.min.y + (static_cast<double>(r) + 0.5) * tile_h});
    }
  }
  return sites;
}

VoronoiPartition::VoronoiPartition(std::vector<PointM> sites)
    : index_(std::move(sites)) {}

ServerId VoronoiPartition::cell_of(const PointM& p) const {
  return static_cast<ServerId>(index_.nearest(p));
}

std::vector<ServerId> VoronoiPartition::assign_segments(
    const roadnet::RoadGraph& g) const {
  AVCP_EXPECT(g.finalized());
  std::vector<ServerId> cells(g.num_segments());
  for (std::size_t s = 0; s < g.num_segments(); ++s) {
    cells[s] = cell_of(g.segment_midpoint(static_cast<roadnet::SegmentId>(s)));
  }
  return cells;
}

}  // namespace avcp::spatial
