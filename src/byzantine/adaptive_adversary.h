// Closed-loop adversaries that observe the defense and adapt.
//
// AdversaryModel's five strategies are open-loop: their schedules are pure
// hashes fixed before round 0 and no attacker ever learns whether it was
// caught. AdaptiveAdversary closes the loop. Each designated attacker runs
// a per-vehicle state machine fed once per round — AFTER the defender's
// end_round — through a defender-controlled AdversaryObservation channel
// carrying exactly what a real vehicle could see: its own published EWMA
// reputation score, whether it is currently excluded (quarantined or
// distrusted), and how many of its region mates are quarantined. The
// defender's Beta-prior trust posterior (trust.h) is NOT observable; that
// asymmetry is why the ratcheting trust defense beats attackers that have
// fully learned the EWMA's forgetting dynamics.
//
// Policies (all free-ride through the claim channel only — the per-round
// MAD rejection makes any telemetry deviation stand out instantly against
// the exact honest cohort, so a reputation-aware attacker lies where only
// the cross-round behavioural channel can see: claim share-everything,
// upload nothing):
//
//   kBuildThenDefect  behave until >= build_rounds clean rounds AND the
//                     own published score has decayed to <= trust_target,
//                     then defect for defect_rounds (sized to stay under
//                     the EWMA quarantine threshold), then rebuild. The
//                     EWMA forgets each burst; the trust ratchet does not.
//   kThresholdProbe   binary-search the largest defect-burst length that
//                     avoids exclusion: try a burst, cool down, tighten
//                     [probe_lo, probe_hi] on the verdict, settle on the
//                     largest safe dose and repeat it forever. Backs off
//                     for good (dormant) if even probe_lo trips.
//   kRegionCollusion  per-region cohorts split into cohort_shifts rotation
//                     shifts (pure hash); each shift free-rides for
//                     shift_rounds in turn, so every member's EWMA decays
//                     for (cohort_shifts-1)*shift_rounds rounds between
//                     its bursts and never crosses the threshold. The
//                     region-level collusion channel (simultaneous
//                     zero-upload groups) is the counter.
//   kChurnExploit     defect persistently until excluded, then go dormant
//                     and wait out the quarantine; in the service layer
//                     (ServiceParams::churn_exploit) the dormant attacker
//                     instead leaves and rejoins under a fresh vehicle id
//                     to reset its reputation — keyed-identity suspicion
//                     carry-over is the counter.
//
// Determinism contract: designation and shift assignment are pure hashes
// of (seed, region, vehicle); everything else is a deterministic function
// of the observation history, which the system delivers in fixed order on
// its round thread. begin_round() freezes a per-round plan serially;
// attacking()/behavior_decision()/falsify() are const lookups of the
// frozen plan and safe to call from the parallel round stages;
// observe()/end_round() advance the machines serially after the
// defender's end_round. Trajectories are bit-identical at every thread
// count and across checkpoint resume (save_state/load_state capture every
// machine).
#pragma once

#include <cstdint>
#include <vector>

#include "byzantine/report.h"
#include "core/game.h"
#include "core/lattice.h"

namespace avcp::byzantine {

enum class AdaptivePolicy : std::uint8_t {
  kBuildThenDefect = 0,
  kThresholdProbe = 1,
  kRegionCollusion = 2,
  kChurnExploit = 3,
};

/// What the defender lets an attacker see about itself each round. The
/// channel is defender-controlled: it publishes the EWMA score and the
/// exclusion verdict but never the trust posterior.
struct AdversaryObservation {
  /// The vehicle's published (EWMA-smoothed) reputation score.
  double own_score = 0.0;
  /// The vehicle is currently excluded (quarantined or distrusted).
  bool excluded = false;
  /// Region mates currently quarantined (collective-detection signal).
  std::size_t region_quarantined = 0;
};

struct AdaptiveAdversaryParams {
  /// Fraction of each region's fleet designated as adaptive attackers.
  double attacker_fraction = 0.0;
  AdaptivePolicy policy = AdaptivePolicy::kBuildThenDefect;
  /// kBuildThenDefect/kChurnExploit: minimum clean rounds between bursts.
  std::size_t build_rounds = 6;
  /// kBuildThenDefect: defect-burst length. The default 4 is the longest
  /// run of zero-upload penalties whose EWMA (decay 0.8, raw 3.0) stays
  /// under the default quarantine threshold 2.0.
  std::size_t defect_rounds = 4;
  /// kBuildThenDefect/kChurnExploit: defect only once the own published
  /// score has decayed to this level — the "reputation-aware" gate.
  double trust_target = 0.5;
  /// kThresholdProbe: inclusive burst-length search bounds.
  std::size_t probe_lo = 1;
  std::size_t probe_hi = 12;
  /// kThresholdProbe: clean rounds between probe bursts (lets the EWMA
  /// decay and any delayed quarantine land before the verdict).
  std::size_t probe_cooldown = 10;
  /// kRegionCollusion: rotation shift count and rounds per shift.
  std::size_t cohort_shifts = 3;
  std::size_t shift_rounds = 1;
  std::uint64_t seed = 0;

  /// True if any vehicle is ever designated. any() == false is inert: the
  /// plant's round loop is bit-identical to running with no adversary.
  bool any() const noexcept { return attacker_fraction > 0.0; }

  /// Range-checks every field (FaultParams pattern): fraction a
  /// probability, counters >= 1, probe bounds ordered, target score
  /// non-negative. ContractViolation on failure.
  void validate() const;
};

class AdaptiveAdversary {
 public:
  AdaptiveAdversary(std::size_t num_regions, std::size_t vehicles_per_region,
                    AdaptiveAdversaryParams params);

  const AdaptiveAdversaryParams& params() const noexcept { return params_; }
  bool active() const noexcept { return active_; }

  /// Pure hash of (seed, region, vehicle) — round-independent designation,
  /// same scheme as AdversaryModel but on a distinct stream.
  bool is_attacker(core::RegionId region, std::size_t vehicle) const noexcept;

  /// Every designated adaptive attacker defects in at least one round of a
  /// long enough run — the ground-truth positive set for detection
  /// metrics and the set honest-fleet statistics exclude.
  bool ever_attacks(core::RegionId region, std::size_t vehicle) const noexcept {
    return is_attacker(region, vehicle);
  }

  /// Freezes this round's attack plan from the current machine states.
  /// Serial: call on the round thread before any parallel stage.
  void begin_round(std::size_t round);

  /// The vehicle defects this round (frozen-plan lookup; requires
  /// begin_round(round) to have run). Safe from parallel stages.
  bool attacking(std::size_t round, core::RegionId region,
                 std::size_t vehicle) const noexcept;

  /// The decision actually played in the data plane: the share-nothing
  /// lattice bottom while defecting (free-ride), `honest` otherwise.
  core::DecisionId behavior_decision(std::size_t round, core::RegionId region,
                                     std::size_t vehicle,
                                     core::DecisionId honest,
                                     const core::DecisionLattice& lattice)
      const noexcept;

  /// The falsified S1 report while defecting: claim the share-everything
  /// top, telemetry untouched (the adaptive strategies lie only where the
  /// per-round MAD rejection cannot see). Returns `honest` unchanged for
  /// non-defecting triples.
  VehicleReport falsify(std::size_t round, core::RegionId region,
                        std::size_t vehicle,
                        VehicleReport honest) const noexcept;

  /// Delivers the defender-published feedback for one designated attacker.
  /// Serial: the system calls this on its round thread after the
  /// pipeline's end_round, in (region, vehicle) order.
  void observe(core::RegionId region, std::size_t vehicle,
               const AdversaryObservation& obs);

  /// Advances every attacker's state machine one round. Serial, after all
  /// observe() calls for the round.
  void end_round(std::size_t round);

  /// Rounds folded in so far (== end_round calls).
  std::size_t rounds() const noexcept { return rounds_; }

  /// Attackers currently dormant (backed off for good after exclusion or
  /// a fully-suppressed probe).
  std::size_t total_dormant() const;

  /// Checkpoint hooks: every per-vehicle machine plus the round counter.
  /// Call between rounds only (after end_round, before the next
  /// begin_round); the frozen plan is rebuilt by begin_round and is not
  /// part of the state. load_state rejects a mismatched fleet shape.
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);

 private:
  enum class Phase : std::uint8_t {
    kBuild = 0,     // behaving; waiting out build_rounds / cooldown
    kAttack = 1,    // defecting this burst
    kDormant = 2,   // backed off for good
  };

  struct Cell {
    Phase phase = Phase::kBuild;
    /// Rounds spent in the current phase.
    std::size_t phase_rounds = 0;
    /// kThresholdProbe: current search bounds and the dose under test.
    std::size_t lo = 0;
    std::size_t hi = 0;
    std::size_t burst_len = 0;
    /// Exclusion observed since the current burst started (probe verdict).
    bool tripped = false;
    /// Latest observation.
    double last_score = 0.0;
    bool last_excluded = false;
    std::size_t last_region_excluded = 0;
  };

  Cell& cell(core::RegionId region, std::size_t vehicle);
  const Cell& cell(core::RegionId region, std::size_t vehicle) const;

  /// kRegionCollusion: the vehicle's rotation shift (pure hash).
  std::size_t shift_of(core::RegionId region, std::size_t vehicle)
      const noexcept;

  /// Advances one attacker's machine from its latest observation.
  void advance(Cell& c);

  AdaptiveAdversaryParams params_;
  bool active_;
  std::size_t vehicles_per_region_;
  std::size_t rounds_ = 0;
  std::vector<std::vector<Cell>> cells_;
  /// plans_[region][vehicle] != 0: defect this round (frozen by
  /// begin_round, read-only during the parallel stages).
  std::vector<std::vector<std::uint8_t>> plans_;
};

}  // namespace avcp::byzantine
