#include "byzantine/adaptive_adversary.h"

#include "common/contracts.h"
#include "common/rng.h"
#include "common/serial.h"

namespace avcp::byzantine {

namespace {

/// Distinct hash stream for adaptive-attacker designation, disjoint from
/// the static AdversaryModel's and the fault layer's streams so a run
/// combining the layers draws independent schedules.
constexpr std::uint64_t kAdaptiveStream = 0x6164617074697665ULL;  // "adaptive"
/// Sub-streams within the adaptive layer.
constexpr std::uint64_t kDesignate = 1;
constexpr std::uint64_t kShift = 2;
constexpr std::uint64_t kStagger = 3;

/// Absorbs one value into the running hash (splitmix64 finalizer over a
/// boost-style combine), matching the fault and adversary layers' scheme.
inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t s = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  return splitmix64(s);
}

inline std::uint64_t hash_u64(std::uint64_t seed, std::uint64_t stream,
                              std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t h = mix(seed, kAdaptiveStream);
  h = mix(h, stream);
  h = mix(h, a);
  return mix(h, b);
}

inline double hash_uniform(std::uint64_t seed, std::uint64_t stream,
                           std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<double>(hash_u64(seed, stream, a, b) >> 11) * 0x1.0p-53;
}

}  // namespace

void AdaptiveAdversaryParams::validate() const {
  AVCP_EXPECT(attacker_fraction >= 0.0 && attacker_fraction <= 1.0);
  AVCP_EXPECT(build_rounds >= 1);
  AVCP_EXPECT(defect_rounds >= 1);
  AVCP_EXPECT(trust_target >= 0.0);
  AVCP_EXPECT(probe_lo >= 1);
  AVCP_EXPECT(probe_hi >= probe_lo);
  AVCP_EXPECT(probe_cooldown >= 1);
  AVCP_EXPECT(cohort_shifts >= 1);
  AVCP_EXPECT(shift_rounds >= 1);
}

AdaptiveAdversary::AdaptiveAdversary(std::size_t num_regions,
                                     std::size_t vehicles_per_region,
                                     AdaptiveAdversaryParams params)
    : params_(params),
      active_(params.any()),
      vehicles_per_region_(vehicles_per_region) {
  AVCP_EXPECT(num_regions >= 1);
  AVCP_EXPECT(vehicles_per_region >= 1);
  params_.validate();
  cells_.assign(num_regions, std::vector<Cell>(vehicles_per_region));
  plans_.assign(num_regions,
                std::vector<std::uint8_t>(vehicles_per_region, 0));
  for (core::RegionId i = 0; i < num_regions; ++i) {
    for (std::size_t v = 0; v < vehicles_per_region; ++v) {
      Cell& c = cells_[i][v];
      switch (params_.policy) {
        case AdaptivePolicy::kBuildThenDefect:
        case AdaptivePolicy::kChurnExploit:
          // Staggered build phases: a pure-hash head start so the fleet's
          // bursts do not all land on the same round.
          c.phase = Phase::kBuild;
          c.phase_rounds =
              static_cast<std::size_t>(hash_u64(params_.seed, kStagger, i, v) %
                                       params_.build_rounds);
          break;
        case AdaptivePolicy::kThresholdProbe:
          // Probe immediately with the midpoint dose.
          c.phase = Phase::kAttack;
          c.lo = params_.probe_lo;
          c.hi = params_.probe_hi;
          c.burst_len = (c.lo + c.hi + 1) / 2;
          break;
        case AdaptivePolicy::kRegionCollusion:
          // Shift membership drives the plan; the machine only tracks
          // whether the vehicle has dropped out.
          c.phase = Phase::kBuild;
          break;
      }
    }
  }
}

AdaptiveAdversary::Cell& AdaptiveAdversary::cell(core::RegionId region,
                                                 std::size_t vehicle) {
  AVCP_EXPECT(region < cells_.size());
  AVCP_EXPECT(vehicle < vehicles_per_region_);
  return cells_[region][vehicle];
}

const AdaptiveAdversary::Cell& AdaptiveAdversary::cell(
    core::RegionId region, std::size_t vehicle) const {
  AVCP_EXPECT(region < cells_.size());
  AVCP_EXPECT(vehicle < vehicles_per_region_);
  return cells_[region][vehicle];
}

bool AdaptiveAdversary::is_attacker(core::RegionId region,
                                    std::size_t vehicle) const noexcept {
  if (params_.attacker_fraction <= 0.0) return false;
  return hash_uniform(params_.seed, kDesignate, region, vehicle) <
         params_.attacker_fraction;
}

std::size_t AdaptiveAdversary::shift_of(core::RegionId region,
                                        std::size_t vehicle) const noexcept {
  return static_cast<std::size_t>(hash_u64(params_.seed, kShift, region,
                                           vehicle) %
                                  params_.cohort_shifts);
}

void AdaptiveAdversary::begin_round(std::size_t round) {
  if (!active_) return;
  const std::size_t slot =
      (round / params_.shift_rounds) % params_.cohort_shifts;
  for (core::RegionId i = 0; i < cells_.size(); ++i) {
    for (std::size_t v = 0; v < vehicles_per_region_; ++v) {
      std::uint8_t plan = 0;
      if (is_attacker(i, v)) {
        const Cell& c = cells_[i][v];
        if (params_.policy == AdaptivePolicy::kRegionCollusion) {
          plan = c.phase != Phase::kDormant && shift_of(i, v) == slot ? 1 : 0;
        } else {
          plan = c.phase == Phase::kAttack ? 1 : 0;
        }
      }
      plans_[i][v] = plan;
    }
  }
}

bool AdaptiveAdversary::attacking(std::size_t round, core::RegionId region,
                                  std::size_t vehicle) const noexcept {
  (void)round;  // the frozen plan is already round-specific
  if (!active_) return false;
  if (region >= plans_.size() || vehicle >= vehicles_per_region_) return false;
  return plans_[region][vehicle] != 0;
}

core::DecisionId AdaptiveAdversary::behavior_decision(
    std::size_t round, core::RegionId region, std::size_t vehicle,
    core::DecisionId honest, const core::DecisionLattice& lattice)
    const noexcept {
  if (!attacking(round, region, vehicle)) return honest;
  // Free-ride: upload under the share-nothing bottom of the lattice while
  // the claimed top earns full pool access.
  return static_cast<core::DecisionId>(lattice.num_decisions() - 1);
}

VehicleReport AdaptiveAdversary::falsify(std::size_t round,
                                         core::RegionId region,
                                         std::size_t vehicle,
                                         VehicleReport honest) const noexcept {
  if (!attacking(round, region, vehicle)) return honest;
  // Claim-channel lie only: telemetry stays honest so the per-round MAD
  // rejection has nothing to reject — the whole point of the adaptive
  // strategies is to live below the defenses that fire within one round.
  VehicleReport r = honest;
  r.decision = 0;
  return r;
}

void AdaptiveAdversary::observe(core::RegionId region, std::size_t vehicle,
                                const AdversaryObservation& obs) {
  if (!active_) return;
  Cell& c = cell(region, vehicle);
  c.last_score = obs.own_score;
  c.last_excluded = obs.excluded;
  c.last_region_excluded = obs.region_quarantined;
}

void AdaptiveAdversary::advance(Cell& c) {
  if (c.phase == Phase::kDormant) return;
  if (c.last_excluded) c.tripped = true;
  switch (params_.policy) {
    case AdaptivePolicy::kBuildThenDefect:
      ++c.phase_rounds;
      if (c.phase == Phase::kAttack) {
        if (c.last_excluded || c.phase_rounds >= params_.defect_rounds) {
          c.phase = Phase::kBuild;
          c.phase_rounds = 0;
        }
      } else if (c.phase_rounds >= params_.build_rounds &&
                 c.last_score <= params_.trust_target && !c.last_excluded) {
        c.phase = Phase::kAttack;
        c.phase_rounds = 0;
      }
      break;
    case AdaptivePolicy::kChurnExploit:
      ++c.phase_rounds;
      if (c.phase == Phase::kAttack) {
        // Defect until caught; once excluded, lie low. In the service
        // layer the dormant attacker churns out and rejoins under a fresh
        // id instead (ServiceParams::churn_exploit).
        if (c.last_excluded) {
          c.phase = Phase::kDormant;
          c.phase_rounds = 0;
        }
      } else if (c.phase_rounds >= params_.build_rounds &&
                 c.last_score <= params_.trust_target && !c.last_excluded) {
        c.phase = Phase::kAttack;
        c.phase_rounds = 0;
      }
      break;
    case AdaptivePolicy::kThresholdProbe:
      ++c.phase_rounds;
      if (c.phase == Phase::kAttack) {
        if (c.tripped || c.phase_rounds >= c.burst_len) {
          c.phase = Phase::kBuild;  // cooldown / verdict window
          c.phase_rounds = 0;
        }
      } else if (c.phase_rounds >= params_.probe_cooldown &&
                 !c.last_excluded) {
        // Verdict on the last burst: exclusion anywhere since it started
        // (including a delayed quarantine during cooldown) blames the
        // dose. Shrink the search interval accordingly; once it closes,
        // keep repeating the largest safe dose.
        if (c.tripped) {
          if (c.burst_len <= params_.probe_lo) {
            c.phase = Phase::kDormant;  // even the minimal dose trips
            break;
          }
          c.hi = c.burst_len - 1;
          if (c.lo > c.hi) c.lo = c.hi;
        } else {
          c.lo = c.burst_len;
        }
        c.tripped = false;
        c.burst_len = c.lo < c.hi ? (c.lo + c.hi + 1) / 2 : c.lo;
        c.phase = Phase::kAttack;
        c.phase_rounds = 0;
      }
      break;
    case AdaptivePolicy::kRegionCollusion:
      // Drop out for good on any detection signal — own exclusion or a
      // caught region mate (the cohort's collective tell).
      if (c.last_excluded || c.last_region_excluded > 0) {
        c.phase = Phase::kDormant;
      }
      break;
  }
}

void AdaptiveAdversary::end_round(std::size_t round) {
  (void)round;
  if (!active_) return;
  for (core::RegionId i = 0; i < cells_.size(); ++i) {
    for (std::size_t v = 0; v < vehicles_per_region_; ++v) {
      if (!is_attacker(i, v)) continue;
      advance(cells_[i][v]);
    }
  }
  ++rounds_;
}

std::size_t AdaptiveAdversary::total_dormant() const {
  std::size_t count = 0;
  for (core::RegionId i = 0; i < cells_.size(); ++i) {
    for (std::size_t v = 0; v < vehicles_per_region_; ++v) {
      if (is_attacker(i, v) && cells_[i][v].phase == Phase::kDormant) {
        ++count;
      }
    }
  }
  return count;
}

void AdaptiveAdversary::save_state(Serializer& s) const {
  s.put_u64(cells_.size());
  s.put_u64(vehicles_per_region_);
  s.put_u64(rounds_);
  for (const std::vector<Cell>& region : cells_) {
    for (const Cell& c : region) {
      s.put_u32(static_cast<std::uint32_t>(c.phase));
      s.put_u64(c.phase_rounds);
      s.put_u64(c.lo);
      s.put_u64(c.hi);
      s.put_u64(c.burst_len);
      s.put_bool(c.tripped);
      s.put_f64(c.last_score);
      s.put_bool(c.last_excluded);
      s.put_u64(c.last_region_excluded);
    }
  }
}

void AdaptiveAdversary::load_state(Deserializer& d) {
  Deserializer::check(d.get_u64() == cells_.size(),
                      "AdaptiveAdversary region count mismatch");
  Deserializer::check(d.get_u64() == vehicles_per_region_,
                      "AdaptiveAdversary fleet size mismatch");
  rounds_ = static_cast<std::size_t>(d.get_u64());
  for (std::vector<Cell>& region : cells_) {
    for (Cell& c : region) {
      const std::uint32_t phase = d.get_u32();
      Deserializer::check(phase <= 2, "AdaptiveAdversary phase out of range");
      c.phase = static_cast<Phase>(phase);
      c.phase_rounds = static_cast<std::size_t>(d.get_u64());
      c.lo = static_cast<std::size_t>(d.get_u64());
      c.hi = static_cast<std::size_t>(d.get_u64());
      c.burst_len = static_cast<std::size_t>(d.get_u64());
      c.tripped = d.get_bool();
      c.last_score = d.get_f64();
      c.last_excluded = d.get_bool();
      c.last_region_excluded = static_cast<std::size_t>(d.get_u64());
    }
  }
}

}  // namespace avcp::byzantine
