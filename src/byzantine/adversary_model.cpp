#include "byzantine/adversary_model.h"

#include "common/contracts.h"
#include "common/rng.h"

namespace avcp::byzantine {

namespace {

/// Distinct hash stream for attacker designation, disjoint from the
/// faults::FaultModel streams so a run combining both layers draws
/// independent schedules from independent seeds.
constexpr std::uint64_t kAttackerStream = 0x627974726169746fULL;

/// Absorbs one value into the running hash (splitmix64 finalizer over a
/// boost-style combine), matching the fault layer's scheme.
inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t s = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  return splitmix64(s);
}

inline double hash_uniform(std::uint64_t seed, std::uint64_t a,
                           std::uint64_t b) noexcept {
  std::uint64_t h = mix(seed, kAttackerStream);
  h = mix(h, a);
  h = mix(h, b);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool AdversaryParams::any() const noexcept { return attacker_fraction > 0.0; }

AdversaryModel::AdversaryModel(AdversaryParams params)
    : params_(params), active_(params_.any()) {
  AVCP_EXPECT(params_.attacker_fraction >= 0.0 &&
              params_.attacker_fraction <= 1.0);
  AVCP_EXPECT(params_.magnitude > 0.0);
  AVCP_EXPECT(params_.flip_period >= 1);
}

bool AdversaryModel::is_attacker(core::RegionId region,
                                 std::size_t vehicle) const noexcept {
  if (params_.attacker_fraction <= 0.0) return false;
  return hash_uniform(params_.seed, region, vehicle) <
         params_.attacker_fraction;
}

bool AdversaryModel::ever_attacks(core::RegionId region,
                                  std::size_t vehicle) const noexcept {
  if (!is_attacker(region, vehicle)) return false;
  if (params_.strategy == AttackStrategy::kColludingBias &&
      params_.target_region != AdversaryParams::kAllRegions &&
      params_.target_region != region) {
    return false;
  }
  return true;
}

bool AdversaryModel::attacking(std::size_t round, core::RegionId region,
                               std::size_t vehicle) const noexcept {
  if (!ever_attacks(region, vehicle)) return false;
  if (params_.strategy == AttackStrategy::kFlipFlop) {
    // Cycle starts honest: [0, T) clean, [T, 2T) attacking, ...
    return (round / params_.flip_period) % 2 == 1;
  }
  return true;
}

core::DecisionId AdversaryModel::behavior_decision(
    std::size_t round, core::RegionId region, std::size_t vehicle,
    core::DecisionId honest, const core::DecisionLattice& lattice)
    const noexcept {
  if (!attacking(round, region, vehicle)) return honest;
  switch (params_.strategy) {
    case AttackStrategy::kInflateSharing:
    case AttackStrategy::kColludingBias:
    case AttackStrategy::kFlipFlop:
      // Free-ride: upload under the share-nothing bottom of the lattice
      // (P^K shares no sensor) while the claim earns pool access.
      return static_cast<core::DecisionId>(lattice.num_decisions() - 1);
    case AttackStrategy::kDensityPoison:
    case AttackStrategy::kGammaExaggerate:
      return honest;  // telemetry-only lies; data-plane behaviour is honest
  }
  return honest;
}

VehicleReport AdversaryModel::falsify(std::size_t round, core::RegionId region,
                                      std::size_t vehicle,
                                      VehicleReport honest) const noexcept {
  if (!attacking(round, region, vehicle)) return honest;
  const auto share_all = static_cast<core::DecisionId>(0);
  VehicleReport r = honest;
  switch (params_.strategy) {
    case AttackStrategy::kInflateSharing:
      r.decision = share_all;
      break;
    case AttackStrategy::kDensityPoison:
      r.density *= params_.magnitude;
      break;
    case AttackStrategy::kGammaExaggerate:
      r.gamma *= params_.magnitude;
      break;
    case AttackStrategy::kColludingBias:
      // Coordinated identical lies: every colluder submits the same biased
      // row, so sample-variance checks see a consistent sub-population.
      r.decision = share_all;
      r.beta *= params_.magnitude;
      r.density *= params_.magnitude;
      break;
    case AttackStrategy::kFlipFlop:
      r.decision = share_all;
      r.density *= params_.magnitude;
      break;
  }
  return r;
}

}  // namespace avcp::byzantine
