#include "byzantine/robust_aggregator.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace avcp::byzantine {

RobustAggregator::RobustAggregator(RobustOptions options) : options_(options) {
  AVCP_EXPECT(options_.trim_fraction >= 0.0 && options_.trim_fraction <= 0.5);
  AVCP_EXPECT(options_.mad_threshold > 0.0);
  AVCP_EXPECT(options_.mad_floor_rel > 0.0);
}

double RobustAggregator::median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  const double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lower + upper);
}

double RobustAggregator::weighted_median(std::span<const double> values,
                                         std::span<const double> weights) {
  AVCP_EXPECT(values.size() == weights.size());
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (const double w : weights) {
    AVCP_EXPECT(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) {
    return median(std::vector<double>(values.begin(), values.end()));
  }
  std::vector<std::size_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;  // stable tie-break: index order, independent of layout
  });
  const double half = 0.5 * total;
  double cumulative = 0.0;
  for (const std::size_t i : order) {
    cumulative += weights[i];
    if (cumulative >= half) return values[i];
  }
  return values[order.back()];
}

double RobustAggregator::mad(std::span<const double> values, double center) {
  if (values.empty()) return 0.0;
  std::vector<double> deviations(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    deviations[i] = std::abs(values[i] - center);
  }
  return median(std::move(deviations));
}

double RobustAggregator::aggregate(std::span<const double> values) const {
  if (values.empty()) return 0.0;
  switch (options_.mode) {
    case AggregationMode::kMean: {
      double sum = 0.0;
      for (const double v : values) sum += v;
      return sum / static_cast<double>(values.size());
    }
    case AggregationMode::kMedian:
      return median(std::vector<double>(values.begin(), values.end()));
    case AggregationMode::kTrimmedMean: {
      std::vector<double> sorted(values.begin(), values.end());
      std::sort(sorted.begin(), sorted.end());
      const auto cut = static_cast<std::size_t>(
          options_.trim_fraction * static_cast<double>(sorted.size()));
      if (2 * cut >= sorted.size()) return median(std::move(sorted));
      double sum = 0.0;
      for (std::size_t i = cut; i < sorted.size() - cut; ++i) sum += sorted[i];
      return sum / static_cast<double>(sorted.size() - 2 * cut);
    }
  }
  return 0.0;
}

std::vector<double> RobustAggregator::outlier_scores(
    std::span<const double> values) const {
  std::vector<double> scores(values.size(), 0.0);
  if (values.empty()) return scores;
  const double center =
      median(std::vector<double>(values.begin(), values.end()));
  const double scale =
      std::max(mad(values, center),
               options_.mad_floor_rel * std::max(1.0, std::abs(center)));
  for (std::size_t i = 0; i < values.size(); ++i) {
    scores[i] = std::abs(values[i] - center) / scale;
  }
  return scores;
}

}  // namespace avcp::byzantine
