// Robust location estimators for folding per-vehicle reports into
// per-region observations.
//
// The cloud's controller acts on per-region aggregates of the vehicle
// reports. The sample mean — the implicit estimator of the paper's
// framework — has breakdown point 0: one falsified report moves it
// arbitrarily. RobustAggregator supplies the classic bounded-influence
// alternatives for the scalar telemetry channels:
//
//   kMean         the exact current behaviour (kept bit-identical so the
//                 robustness layer can be disabled without perturbing a
//                 seeded run);
//   kMedian       breakdown point 1/2;
//   kTrimmedMean  trims trim_fraction of each tail, breakdown point
//                 trim_fraction.
//
// Independent of the location mode, MAD-based outlier *rejection* scores
// every sample by |v - median| / max(MAD, floor) and flags scores above
// mad_threshold; the decision-histogram aggregation (report_pipeline.h)
// drops flagged reports before averaging. Honest telemetry is tightly
// concentrated, so the MAD collapses and any falsified channel stands out
// by orders of magnitude.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace avcp::byzantine {

enum class AggregationMode : std::uint8_t {
  kMean = 0,
  kMedian = 1,
  kTrimmedMean = 2,
};

struct RobustOptions {
  AggregationMode mode = AggregationMode::kMean;
  /// kTrimmedMean: fraction trimmed from EACH tail (0 = plain mean,
  /// 0.5 degenerates to the median).
  double trim_fraction = 0.1;
  /// When true, samples whose MAD-normalised residual exceeds
  /// mad_threshold are excluded from the decision-histogram aggregation
  /// and scored into the reputation layer.
  bool reject_outliers = false;
  double mad_threshold = 8.0;
  /// Relative floor on the MAD scale: scale = max(MAD,
  /// mad_floor_rel * max(1, |median|)). Honest channels are exact in the
  /// synthetic plant, so the MAD is frequently zero; the floor keeps the
  /// residual finite while still flagging any real deviation.
  double mad_floor_rel = 1e-6;

  /// True when the aggregation path is the paper's trusting mean: location
  /// by kMean and no outlier rejection.
  bool passthrough() const noexcept {
    return mode == AggregationMode::kMean && !reject_outliers;
  }
};

class RobustAggregator {
 public:
  explicit RobustAggregator(RobustOptions options = {});

  const RobustOptions& options() const noexcept { return options_; }

  /// Location estimate of `values` under the configured mode; 0 for an
  /// empty sample. kMean sums in index order — bit-identical to the
  /// pre-existing mean path.
  double aggregate(std::span<const double> values) const;

  /// MAD-normalised residual of every sample: |v - median| /
  /// max(MAD, mad_floor_rel * max(1, |median|)).
  std::vector<double> outlier_scores(std::span<const double> values) const;

  /// Whether a score from outlier_scores crosses the rejection threshold
  /// (always false when rejection is disabled).
  bool is_outlier(double score) const noexcept {
    return options_.reject_outliers && score > options_.mad_threshold;
  }

  /// Median by value (sorts its copy); 0 for an empty sample.
  static double median(std::vector<double> values);

  /// Trust-weighted median: the smallest value whose cumulative weight
  /// reaches half the total (weights must be non-negative and pairwise
  /// aligned with values). Degenerates to the unweighted median when all
  /// weights are equal or the total weight is zero; 0 for an empty
  /// sample. This is how the Beta-prior trust posterior (trust.h) feeds
  /// the telemetry aggregation: partially-trusted vehicles lose influence
  /// continuously instead of only at the exclusion cliff.
  static double weighted_median(std::span<const double> values,
                                std::span<const double> weights);

  /// Median absolute deviation around `center`; 0 for an empty sample.
  static double mad(std::span<const double> values, double center);

 private:
  RobustOptions options_;
};

}  // namespace avcp::byzantine
