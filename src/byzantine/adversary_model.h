// Adversarial vehicle models for the Byzantine-robust telemetry path.
//
// faults::FaultModel covers *crash* faults: links drop, servers go down,
// reports vanish. AdversaryModel covers *strategic* misbehaviour — vehicles
// that stay perfectly reachable but lie. From the same seeded pure-hash
// scheme as the fault layer it designates a fraction of every region's
// fleet as attackers and synthesizes their falsified S1 reports under
// pluggable strategies:
//
//   kInflateSharing   free-rider: claims the share-everything decision
//                     toward the server (earning lattice access to the
//                     whole pool) while actually uploading nothing.
//   kDensityPoison    inflates the claimed traffic density, steering the
//                     cloud's density-derived desired fields.
//   kGammaExaggerate  exaggerates the claimed sharing frequency gamma.
//   kColludingBias    colluders inside one target region submit identical
//                     biased reports (beta and density scaled, decision
//                     claimed share-all) — coordinated lies defeat
//                     variance checks but not the median.
//   kFlipFlop         on/off: behaves honestly for flip_period rounds,
//                     then attacks (inflate + density poison) for the
//                     next flip_period rounds, evading naive detectors.
//
// Every predicate is a pure hash of (seed, stream, indices) — no mutable
// RNG state — so schedules are reproducible regardless of query order and
// the plant, the simulators, and the benches can consult one model
// independently without perturbing each other.
#pragma once

#include <cstdint>

#include "byzantine/report.h"
#include "core/game.h"
#include "core/lattice.h"

namespace avcp::byzantine {

enum class AttackStrategy : std::uint8_t {
  kInflateSharing = 0,
  kDensityPoison = 1,
  kGammaExaggerate = 2,
  kColludingBias = 3,
  kFlipFlop = 4,
};

struct AdversaryParams {
  /// Sentinel: the attack targets every region (kColludingBias).
  static constexpr core::RegionId kAllRegions = ~core::RegionId{0};

  /// Fraction of each region's fleet designated as attackers.
  double attacker_fraction = 0.0;
  AttackStrategy strategy = AttackStrategy::kInflateSharing;
  /// Multiplier applied to the falsified telemetry channels (density for
  /// kDensityPoison/kFlipFlop, gamma for kGammaExaggerate, beta and
  /// density for kColludingBias).
  double magnitude = 4.0;
  /// kColludingBias: region whose desired field the colluders steer;
  /// attackers in other regions stay honest.
  core::RegionId target_region = kAllRegions;
  /// kFlipFlop: half-period of the on/off cycle in rounds. The cycle
  /// starts honest: rounds [0, flip_period) are clean.
  std::size_t flip_period = 5;
  std::uint64_t seed = 0;

  /// True if any vehicle can ever attack. A model with any() == false is
  /// inert: the plant's report path is bit-identical to running with no
  /// model at all.
  bool any() const noexcept;
};

class AdversaryModel {
 public:
  explicit AdversaryModel(AdversaryParams params);

  const AdversaryParams& params() const noexcept { return params_; }
  bool active() const noexcept { return active_; }

  /// The vehicle is designated an attacker (round-independent; the pure
  /// hash of (seed, region, vehicle) every consumer sees). Designation is
  /// scope-blind: a kColludingBias designee outside the target region is
  /// still "designated" but never misbehaves — see ever_attacks().
  bool is_attacker(core::RegionId region, std::size_t vehicle) const noexcept;

  /// The vehicle misbehaves in at least one round of any run: designated
  /// *and* inside the strategy's target scope. This is the ground-truth
  /// positive set for detection precision/recall, and the set honest-fleet
  /// statistics exclude; a colluder in a non-target region is permanently
  /// honest and belongs to neither.
  bool ever_attacks(core::RegionId region, std::size_t vehicle) const noexcept;

  /// The vehicle misbehaves *this round*: designated, inside the strategy's
  /// target scope, and (kFlipFlop) inside an attack window.
  bool attacking(std::size_t round, core::RegionId region,
                 std::size_t vehicle) const noexcept;

  /// The decision the vehicle actually plays in the data plane. Free-riding
  /// strategies (kInflateSharing, kColludingBias, kFlipFlop while on)
  /// upload under the share-nothing decision regardless of their claim;
  /// telemetry-only strategies behave honestly. Returns `honest` unchanged
  /// for non-attacking (round, region, vehicle) triples.
  core::DecisionId behavior_decision(std::size_t round, core::RegionId region,
                                     std::size_t vehicle,
                                     core::DecisionId honest,
                                     const core::DecisionLattice& lattice)
      const noexcept;

  /// The falsified report the vehicle submits this round (claimed decision
  /// 0 is the lattice's share-everything top by construction). Returns
  /// `honest` unchanged for non-attacking triples.
  VehicleReport falsify(std::size_t round, core::RegionId region,
                        std::size_t vehicle,
                        VehicleReport honest) const noexcept;

 private:
  AdversaryParams params_;
  bool active_;
};

}  // namespace avcp::byzantine
