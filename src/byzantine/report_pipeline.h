// Byzantine-robust report ingestion for the cloud control plane.
//
// ReportPipeline is the stateful path between the raw per-vehicle S1
// reports and the per-region observation the controller acts on. Per round
// and region it:
//
//   1. drops reports of quarantined vehicles (when enforcement is on);
//   2. scores every report's telemetry channels (beta / gamma / density)
//      against the trusted cohort's median via MAD-normalised residuals
//      (robust_aggregator.h) and feeds the residuals into the reputation
//      layer;
//   3. rejects per-round outliers and aggregates the surviving reports:
//      the decision histogram as a filtered mean (one-hot claims admit no
//      coordinate-wise median), the telemetry channels under the
//      configured robust location mode;
//   4. after the exchange phase, scores the behavioural channel over the
//      share-everything cohort: a vehicle claiming decision 0, when the
//      cohort demonstrably uploads (positive median privacy mass), should
//      upload *something* — an inflate-sharing free-rider that claims
//      share-everything but uploads nothing refreshes a fixed penalty
//      every round and accumulates into quarantine even though each
//      individual report looks plausible. Partial-sharing cohorts are not
//      audited: their honest zero-upload rate is too high (a sparse
//      collection often carries none of the claimed sensors' items).
//
// With RobustOptions::passthrough() and enforcement off, the pipeline's
// observed histogram is bit-identical to the pre-existing trusting mean
// (same summation order, same divisor), so a seeded clean run is
// unperturbed by routing its reports through the pipeline.
//
// Concurrency contract (relied on by the system's parallel round engine):
// aggregate() and observe_uploads() touch only state scoped to their
// `region` argument (the region's claims row and the reputation cells of
// that region's vehicles; the aggregator is stateless), so calls for
// *distinct* regions may run concurrently. Calls for the same region, and
// end_round() (which decays every cell and appends events), must be
// serialized by the caller — the system runs end_round on its round
// thread after the per-region fan-out joins.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "byzantine/report.h"
#include "byzantine/reputation.h"
#include "byzantine/robust_aggregator.h"
#include "byzantine/trust.h"
#include "core/fds.h"
#include "core/game.h"

namespace avcp::byzantine {

struct PipelineOptions {
  RobustOptions aggregator;
  ReputationParams reputation;
  /// Beta-prior trust layer (trust.h): ratcheting posteriors that survive
  /// adaptive build-then-defect pacing, collusion scoring over correlated
  /// residuals and simultaneous zero-upload groups, and trust-weighted
  /// telemetry medians. Disabled by default — the pipeline is then
  /// bit-identical to the pre-trust path.
  TrustParams trust;
  /// Exclude quarantined vehicles' reports from the aggregates (the plant
  /// additionally revokes their lattice access). Off = observe-only
  /// reputation: scores and events accrue but nothing is filtered.
  bool enforce_quarantine = true;
  /// Relative weight of the telemetry residuals in the per-round score.
  double telemetry_weight = 1.0;
  /// Relative weight of the zero-upload behavioural penalty.
  double behavior_weight = 1.0;
  /// Minimum share-everything cohort size for the behavioural check;
  /// below it there is no reliable baseline and the channel is skipped.
  std::size_t min_cohort = 4;
};

/// Raw per-round score for a vehicle that uploads nothing while its
/// same-claim cohort's median upload mass is positive. Sized so a
/// persistent free-rider's EWMA clears the default quarantine threshold
/// within a few rounds while an honest vehicle's occasional empty round
/// (no data collected) decays away.
inline constexpr double kZeroUploadPenalty = 3.0;

/// One region's aggregated observation for the controller.
struct RegionObservation {
  /// Aggregated decision distribution (sums to 1; uniform fallback when
  /// every report was excluded).
  std::vector<double> p;
  double beta = 0.0;
  double gamma = 0.0;
  double density = 0.0;
  /// Reports that survived quarantine + outlier filtering.
  std::size_t reports_used = 0;
  std::size_t outliers_rejected = 0;
  /// Vehicles currently quarantined in the region.
  std::size_t quarantined = 0;
  /// Vehicles currently distrusted by the trust layer (0 when disabled).
  std::size_t distrusted = 0;
};

class ReportPipeline {
 public:
  ReportPipeline(std::size_t num_regions, std::size_t num_decisions,
                 std::size_t vehicles_per_region,
                 PipelineOptions options = {});

  const PipelineOptions& options() const noexcept { return options_; }

  /// Step S1: folds the region's reports into the observation handed to
  /// the controller; scores telemetry residuals into the reputation layer
  /// and remembers the claims for this round's behavioural check.
  /// reports[v] is vehicle v's report; the span must cover the region's
  /// whole fleet.
  RegionObservation aggregate(std::size_t round, core::RegionId region,
                              std::span<const VehicleReport> reports);

  /// End of step S2: `upload_mass[v]` is the privacy mass vehicle v
  /// actually uploaded this round. Applies the zero-upload penalty against
  /// the same-claim cohort median.
  void observe_uploads(core::RegionId region,
                       std::span<const double> upload_mass);

  /// Folds the round into the reputation layer (decay + transitions).
  void end_round(std::size_t round);

  /// True if the vehicle's report and lattice access should be excluded
  /// this round (quarantined with enforcement on, or distrusted by the
  /// trust layer).
  bool excluded(core::RegionId region, std::size_t vehicle) const;

  const ReputationTracker& reputation() const noexcept { return reputation_; }
  ReputationTracker& reputation() noexcept { return reputation_; }
  const TrustTracker& trust() const noexcept { return trust_; }
  const RobustAggregator& aggregator() const noexcept { return aggregator_; }

  /// Checkpoint hooks: the reputation layer plus the per-round claims
  /// buffer (options and the aggregator are configuration, recreated by the
  /// constructor). Call between rounds only — see the concurrency contract.
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);

 private:
  PipelineOptions options_;
  RobustAggregator aggregator_;
  ReputationTracker reputation_;
  TrustTracker trust_;
  std::size_t num_decisions_;
  std::size_t vehicles_per_region_;
  /// claims_[region][vehicle]: this round's claimed decision (S1), for the
  /// behavioural cohort grouping in observe_uploads.
  std::vector<std::vector<core::DecisionId>> claims_;
  /// zero_streak_[region][vehicle]: consecutive audited rounds the vehicle
  /// claimed share-everything yet uploaded nothing. The trust ratchet only
  /// ingests zero-upload evidence from the second consecutive round on —
  /// an honest vehicle's empty-collection rounds are i.i.d. rare events
  /// (streak 1), while a defect burst free-rides on consecutive rounds, so
  /// the streak gate keeps honest noise out of a posterior that never
  /// forgets. The EWMA channel stays ungated: its decay is the forgiveness.
  std::vector<std::vector<std::uint32_t>> zero_streak_;
};

/// Desired-field input from telemetry: every region's share-everything
/// decision (lattice index 0) gets a floor that scales with its reported
/// density relative to the median region —
///   floor_i = clamp(base_floor + slope * (density_i / median - 1),
///                   0.05, 0.95),
/// target_i = [floor_i, 1]. Dense regions are asked to share more. This is
/// the channel a density-poisoning attacker steers when densities come
/// from a trusting mean; fed from a robust aggregate the field stays put.
core::DesiredFields density_weighted_fields(std::size_t num_regions,
                                            std::size_t num_decisions,
                                            std::span<const double> density,
                                            double base_floor, double slope);

}  // namespace avcp::byzantine
