#include "byzantine/report_pipeline.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/serial.h"

namespace avcp::byzantine {

ReportPipeline::ReportPipeline(std::size_t num_regions,
                               std::size_t num_decisions,
                               std::size_t vehicles_per_region,
                               PipelineOptions options)
    : options_(options),
      aggregator_(options.aggregator),
      reputation_(num_regions, vehicles_per_region, options.reputation),
      trust_(num_regions, vehicles_per_region, options.trust),
      num_decisions_(num_decisions),
      vehicles_per_region_(vehicles_per_region) {
  AVCP_EXPECT(num_decisions >= 2);
  AVCP_EXPECT(options_.telemetry_weight >= 0.0);
  AVCP_EXPECT(options_.behavior_weight >= 0.0);
  claims_.assign(num_regions,
                 std::vector<core::DecisionId>(vehicles_per_region, 0));
  zero_streak_.assign(num_regions,
                      std::vector<std::uint32_t>(vehicles_per_region, 0));
}

bool ReportPipeline::excluded(core::RegionId region,
                              std::size_t vehicle) const {
  if (options_.enforce_quarantine && reputation_.quarantined(region, vehicle)) {
    return true;
  }
  return trust_.distrusted(region, vehicle);
}

RegionObservation ReportPipeline::aggregate(
    std::size_t round, core::RegionId region,
    std::span<const VehicleReport> reports) {
  (void)round;
  AVCP_EXPECT(region < claims_.size());
  AVCP_EXPECT(reports.size() == vehicles_per_region_);

  RegionObservation obs;
  obs.quarantined = reputation_.quarantined_in(region);
  obs.distrusted = trust_.distrusted_in(region);

  // Remember the claims for observe_uploads' cohort grouping.
  auto& claims = claims_[region];
  for (std::size_t v = 0; v < reports.size(); ++v) {
    AVCP_EXPECT(reports[v].decision < num_decisions_);
    claims[v] = reports[v].decision;
  }

  // Trusted sub-sample: everything not quarantined (or everything, when
  // enforcement is off). Residual centers come from this sample so a
  // quarantined liar cannot keep dragging the median.
  std::vector<std::size_t> trusted;
  trusted.reserve(reports.size());
  for (std::size_t v = 0; v < reports.size(); ++v) {
    if (!excluded(region, v)) trusted.push_back(v);
  }

  const auto channel = [&reports](const std::vector<std::size_t>& index,
                                  double VehicleReport::* field) {
    std::vector<double> values(index.size());
    for (std::size_t j = 0; j < index.size(); ++j) {
      values[j] = reports[index[j]].*field;
    }
    return values;
  };

  // Per-round outlier rejection on the trusted sample, plus reputation
  // scoring: the residual of every vehicle (trusted or quarantined, the
  // latter against the trusted centers so it can rehabilitate). Only
  // residuals past the rejection threshold accrue reputation — honest
  // measurement noise must not.
  std::vector<std::uint8_t> rejected(reports.size(), 0);
  const double weight = options_.telemetry_weight;
  if ((options_.aggregator.reject_outliers || weight > 0.0) &&
      !trusted.empty()) {
    for (const auto field : {&VehicleReport::beta, &VehicleReport::gamma,
                             &VehicleReport::density}) {
      const std::vector<double> values = channel(trusted, field);
      const double center = RobustAggregator::median(values);
      const double scale = std::max(
          RobustAggregator::mad(values, center),
          options_.aggregator.mad_floor_rel * std::max(1.0, std::abs(center)));
      for (std::size_t v = 0; v < reports.size(); ++v) {
        const double score = std::abs(reports[v].*field - center) / scale;
        if (aggregator_.is_outlier(score) && !excluded(region, v)) {
          rejected[v] = 1;
        }
        if (weight > 0.0 && score > options_.aggregator.mad_threshold) {
          reputation_.observe(region, v, weight * score);
        }
        if (trust_.enabled() && score > options_.aggregator.mad_threshold) {
          trust_.flag(region, v, score);
        }
      }
    }
  }

  // Region-level collusion scoring: colluders submit *identical* falsified
  // tuples (coordination is their strength and their fingerprint — honest
  // noise never collides exactly), so among this round's rejected reports
  // any group sharing one (beta, gamma, density) row is flagged through
  // the trust layer's collusion channel, weighted by group size.
  if (trust_.enabled()) {
    std::vector<std::size_t> deviants;
    for (std::size_t v = 0; v < reports.size(); ++v) {
      if (rejected[v] != 0) deviants.push_back(v);
    }
    for (const std::size_t v : deviants) {
      std::size_t group = 0;
      for (const std::size_t u : deviants) {
        if (reports[u].beta == reports[v].beta &&
            reports[u].gamma == reports[v].gamma &&
            reports[u].density == reports[v].density) {
          ++group;
        }
      }
      if (group >= 2) {
        trust_.flag_collusion(region, v, static_cast<double>(group));
      }
    }
  }

  // Decision histogram: filtered mean over surviving reports, with the
  // exact summation order and divisor of the pre-existing trusting mean so
  // the passthrough configuration is bit-identical.
  obs.p.assign(num_decisions_, 0.0);
  std::size_t used = 0;
  for (std::size_t v = 0; v < reports.size(); ++v) {
    if (excluded(region, v)) continue;
    if (rejected[v] != 0) {
      ++obs.outliers_rejected;
      continue;
    }
    obs.p[reports[v].decision] += 1.0;
    ++used;
  }
  obs.reports_used = used;
  if (used == 0) {
    // Every report excluded: fall back to the uninformative uniform row
    // rather than a zero vector (the controller requires a distribution).
    obs.p.assign(num_decisions_, 1.0 / static_cast<double>(num_decisions_));
  } else {
    for (double& value : obs.p) value /= static_cast<double>(used);
  }

  // Telemetry channels under the configured robust location mode, over the
  // surviving trusted sample.
  std::vector<std::size_t> surviving;
  surviving.reserve(trusted.size());
  for (const std::size_t v : trusted) {
    if (rejected[v] == 0) surviving.push_back(v);
  }
  const auto& sample = surviving.empty() ? trusted : surviving;
  if (trust_.enabled()) {
    // Trust-weighted medians: a vehicle's influence on the telemetry
    // aggregate scales with its Beta-posterior mean, so partially-trusted
    // vehicles fade out before they cross the exclusion floor.
    std::vector<double> weights(sample.size());
    for (std::size_t j = 0; j < sample.size(); ++j) {
      weights[j] = trust_.trust(region, sample[j]);
    }
    obs.beta = RobustAggregator::weighted_median(
        channel(sample, &VehicleReport::beta), weights);
    obs.gamma = RobustAggregator::weighted_median(
        channel(sample, &VehicleReport::gamma), weights);
    obs.density = RobustAggregator::weighted_median(
        channel(sample, &VehicleReport::density), weights);
  } else {
    obs.beta = aggregator_.aggregate(channel(sample, &VehicleReport::beta));
    obs.gamma = aggregator_.aggregate(channel(sample, &VehicleReport::gamma));
    obs.density =
        aggregator_.aggregate(channel(sample, &VehicleReport::density));
  }
  return obs;
}

void ReportPipeline::observe_uploads(core::RegionId region,
                                     std::span<const double> upload_mass) {
  AVCP_EXPECT(region < claims_.size());
  AVCP_EXPECT(upload_mass.size() == vehicles_per_region_);
  if (options_.behavior_weight <= 0.0) return;

  // Only the share-everything cohort (claim 0) is audited. A claim-0
  // vehicle uploads its whole collection, so an honest member shows zero
  // mass only on the rare round it collected nothing at all — whereas a
  // partial-sharing cohort has an inherently high honest zero rate (a
  // single-sensor decision often meets a collection with no item of that
  // sensor), far too noisy for the EWMA threshold to separate. Nothing is
  // lost: every free-riding strategy claims 0 to win full lattice access.
  // The trusted baseline excludes quarantined vehicles, but the penalty
  // loop does not — uploads of quarantined vehicles are still accepted
  // (impounded) by the plant, so a persistent free-rider keeps refreshing
  // its penalty in quarantine while a falsely-flagged honest vehicle's
  // positive mass lets its score decay and rehabilitate. Continuous
  // under-uploading is deliberately not scored: collections are too
  // dispersed for a deficit ratio to separate honest sparse rounds from
  // partial withholding.
  std::vector<double> cohort;
  for (std::size_t v = 0; v < upload_mass.size(); ++v) {
    if (excluded(region, v)) continue;
    if (claims_[region][v] == 0) cohort.push_back(upload_mass[v]);
  }
  if (cohort.size() < options_.min_cohort) return;
  if (RobustAggregator::median(cohort) <= 0.0) {
    // Attack-majority cohort: when free-riders dominate the claim-0 group,
    // its median upload is zero and the cohort baseline says nothing — the
    // legacy EWMA path disarms here (a real blind spot the adaptive sweeps
    // exploit). The trust layer falls back to the rest of the fleet as the
    // data-availability witness: if the other claims' trusted median mass
    // is positive, data existed this round, so a claim-0 vehicle promising
    // everything and uploading nothing is still penalised.
    if (!trust_.enabled()) return;
    std::vector<double> rest;
    for (std::size_t v = 0; v < upload_mass.size(); ++v) {
      if (excluded(region, v)) continue;
      if (claims_[region][v] != 0) rest.push_back(upload_mass[v]);
    }
    if (rest.size() < options_.min_cohort) return;
    if (RobustAggregator::median(rest) <= 0.0) return;
  }
  std::vector<std::size_t> zeros;
  for (std::size_t v = 0; v < upload_mass.size(); ++v) {
    if (claims_[region][v] != 0) {
      zero_streak_[region][v] = 0;
      continue;
    }
    if (upload_mass[v] <= 1e-12) {
      reputation_.observe(region, v,
                          options_.behavior_weight * kZeroUploadPenalty);
      // The trust ratchet never forgets, so it must not ingest honest
      // noise: an empty collection legitimately uploads nothing even under
      // a share-everything claim. Honest empties are i.i.d. (streaks of 1
      // at rate p, of 2 at p^2); free-riding bursts hit zero on
      // consecutive rounds. Only the second-and-later rounds of a streak
      // are trust evidence. The EWMA keeps scoring every zero round — its
      // decay is the forgiveness the posterior lacks.
      ++zero_streak_[region][v];
      if (trust_.enabled() && zero_streak_[region][v] >= 2) {
        trust_.flag(region, v, kZeroUploadPenalty);
        zeros.push_back(v);
      }
    } else {
      zero_streak_[region][v] = 0;
    }
  }
  // Simultaneous zero-upload groups are the behavioural collusion
  // fingerprint: a rotation cohort whose active shift free-rides in
  // lockstep paces each member below the EWMA threshold, but the shift's
  // members all hit zero on the same rounds — correlated evidence the
  // trust ratchet converts to distrust within a few shifts.
  if (zeros.size() >= 2) {
    for (const std::size_t v : zeros) {
      trust_.flag_collusion(region, v, static_cast<double>(zeros.size()));
    }
  }
}

void ReportPipeline::end_round(std::size_t round) {
  reputation_.end_round(round);
  trust_.end_round();
}

void ReportPipeline::save_state(Serializer& s) const {
  reputation_.save_state(s);
  trust_.save_state(s);
  s.put_u64(claims_.size());
  for (const std::vector<core::DecisionId>& region : claims_) {
    put_u32_vec(s, region);
  }
  for (const std::vector<std::uint32_t>& region : zero_streak_) {
    put_u32_vec(s, region);
  }
}

void ReportPipeline::load_state(Deserializer& d) {
  reputation_.load_state(d);
  trust_.load_state(d);
  Deserializer::check(d.get_u64() == claims_.size(),
                      "ReportPipeline region count mismatch");
  for (std::vector<core::DecisionId>& region : claims_) {
    std::vector<core::DecisionId> row = get_u32_vec(d);
    Deserializer::check(row.size() == region.size(),
                        "ReportPipeline claims row size mismatch");
    region = std::move(row);
  }
  for (std::vector<std::uint32_t>& region : zero_streak_) {
    std::vector<std::uint32_t> row = get_u32_vec(d);
    Deserializer::check(row.size() == region.size(),
                        "ReportPipeline zero-streak row size mismatch");
    region = std::move(row);
  }
}

core::DesiredFields density_weighted_fields(std::size_t num_regions,
                                            std::size_t num_decisions,
                                            std::span<const double> density,
                                            double base_floor, double slope) {
  AVCP_EXPECT(density.size() == num_regions);
  AVCP_EXPECT(base_floor >= 0.0 && base_floor <= 1.0);
  const double med = RobustAggregator::median(
      std::vector<double>(density.begin(), density.end()));
  core::DesiredFields fields(num_regions, num_decisions);
  for (core::RegionId i = 0; i < num_regions; ++i) {
    const double relative = med > 0.0 ? density[i] / med : 1.0;
    const double floor =
        std::clamp(base_floor + slope * (relative - 1.0), 0.05, 0.95);
    fields.set_target(i, 0, Interval{floor, 1.0});
  }
  return fields;
}

}  // namespace avcp::byzantine
