// Beta-prior trust state — the ratcheting counterpart of the EWMA
// reputation layer.
//
// ReputationTracker's exponential decay is exactly what an *adaptive*
// adversary exploits: behave for a few rounds and the EWMA forgets the
// last burst completely, so build-then-defect cycles and rotating
// collusion cohorts keep every individual score below the quarantine
// threshold forever (see adaptive_adversary.h). TrustTracker answers with
// a Beta(good, bad) posterior per vehicle:
//
//   - a clean round adds clean_gain to `good`, saturating at good_cap —
//     an attacker cannot bank unbounded goodwill during a build phase;
//   - a flagged round adds flag_gain * score to `bad` (score capped at
//     flag_cap) and `bad` NEVER decays — every defect burst ratchets the
//     posterior toward distrust, no matter how long the attacker
//     rebuilds in between;
//   - correlated misbehaviour (identical falsified tuples, simultaneous
//     zero-upload groups) is flagged through a separate collusion channel
//     weighted by collusion_gain, so a rotation cohort that paces each
//     member below the EWMA threshold still converges to distrust in a
//     handful of shifts.
//
// A vehicle whose posterior mean good / (good + bad) falls below
// trust_floor is distrusted: the report pipeline excludes its reports and
// the plant revokes its lattice access, permanently once bad exceeds
// good_cap. The posterior mean also feeds RobustAggregator's weighted
// median so partially-trusted vehicles lose influence before they lose
// membership.
//
// Concurrency contract: flag()/flag_collusion() touch only the cell of
// their (region, vehicle) argument, so calls for distinct regions may run
// concurrently (the pipeline's per-region fan-out); end_round() folds
// every cell and must be serialized by the caller.
#pragma once

#include <cstdint>
#include <vector>

#include "core/game.h"

namespace avcp::byzantine {

struct TrustParams {
  /// Master switch. Disabled (default) leaves every consumer bit-identical
  /// to the pre-trust pipeline: nothing is flagged, nothing is excluded,
  /// telemetry aggregation keeps its unweighted path.
  bool enabled = false;
  /// Beta prior pseudo-counts: a fresh vehicle starts at
  /// Beta(prior_good, prior_bad), mean prior_good/(prior_good+prior_bad).
  double prior_good = 8.0;
  double prior_bad = 1.0;
  /// Added to `good` on a round with no flags, up to good_cap.
  double clean_gain = 1.0;
  /// Saturation on `good` — bounds how much goodwill a build phase banks.
  double good_cap = 40.0;
  /// Multiplier on the (capped) per-round flagged score into `bad`.
  double flag_gain = 1.0;
  /// Multiplier on the (capped) per-round collusion score into `bad`.
  double collusion_gain = 2.0;
  /// Per-round cap on each raw pending channel before the gains apply.
  double flag_cap = 6.0;
  /// Posterior mean below this distrusts the vehicle.
  double trust_floor = 0.5;

  /// Range-checks every field (FaultParams pattern): pseudo-counts and
  /// gains positive, floor a proper probability. ContractViolation on
  /// failure; called by TrustTracker's constructor.
  void validate() const;
};

class TrustTracker {
 public:
  TrustTracker(std::size_t num_regions, std::size_t vehicles_per_region,
               TrustParams params = {});

  const TrustParams& params() const noexcept { return params_; }
  bool enabled() const noexcept { return params_.enabled; }

  /// Accumulates individual bad evidence for this round (MAD residual past
  /// the rejection threshold, zero-upload penalty). No-op when disabled.
  void flag(core::RegionId region, std::size_t vehicle, double score);

  /// Accumulates correlated bad evidence (the vehicle misbehaved in
  /// lockstep with others this round). No-op when disabled.
  void flag_collusion(core::RegionId region, std::size_t vehicle,
                      double score);

  /// Folds the round's pending evidence into every posterior: flagged
  /// rounds ratchet `bad`, clean rounds grow `good` toward the cap.
  void end_round();

  /// Posterior mean good / (good + bad).
  double trust(core::RegionId region, std::size_t vehicle) const;

  /// trust() < trust_floor (always false when disabled).
  bool distrusted(core::RegionId region, std::size_t vehicle) const;

  std::size_t distrusted_in(core::RegionId region) const;
  std::size_t total_distrusted() const;

  /// Rounds folded in so far (== end_round calls).
  std::size_t rounds() const noexcept { return rounds_; }

  /// Checkpoint hooks: every cell's posterior and pending channels plus
  /// the round counter. load_state rejects a mismatched fleet shape.
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);

 private:
  struct Cell {
    double good = 0.0;
    double bad = 0.0;
    double pending = 0.0;
    double pending_collusion = 0.0;
  };

  Cell& cell(core::RegionId region, std::size_t vehicle);
  const Cell& cell(core::RegionId region, std::size_t vehicle) const;

  TrustParams params_;
  std::size_t vehicles_per_region_;
  std::size_t rounds_ = 0;
  std::vector<std::vector<Cell>> cells_;
};

}  // namespace avcp::byzantine
