#include "byzantine/trust.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/serial.h"

namespace avcp::byzantine {

void TrustParams::validate() const {
  AVCP_EXPECT(prior_good > 0.0);
  AVCP_EXPECT(prior_bad > 0.0);
  AVCP_EXPECT(clean_gain >= 0.0);
  AVCP_EXPECT(good_cap >= prior_good);
  AVCP_EXPECT(flag_gain >= 0.0);
  AVCP_EXPECT(collusion_gain >= 0.0);
  AVCP_EXPECT(flag_cap > 0.0);
  AVCP_EXPECT(trust_floor >= 0.0 && trust_floor < 1.0);
}

TrustTracker::TrustTracker(std::size_t num_regions,
                           std::size_t vehicles_per_region, TrustParams params)
    : params_(params), vehicles_per_region_(vehicles_per_region) {
  AVCP_EXPECT(num_regions >= 1);
  AVCP_EXPECT(vehicles_per_region >= 1);
  params_.validate();
  Cell fresh;
  fresh.good = params_.prior_good;
  fresh.bad = params_.prior_bad;
  cells_.assign(num_regions, std::vector<Cell>(vehicles_per_region, fresh));
}

TrustTracker::Cell& TrustTracker::cell(core::RegionId region,
                                       std::size_t vehicle) {
  AVCP_EXPECT(region < cells_.size());
  AVCP_EXPECT(vehicle < vehicles_per_region_);
  return cells_[region][vehicle];
}

const TrustTracker::Cell& TrustTracker::cell(core::RegionId region,
                                             std::size_t vehicle) const {
  AVCP_EXPECT(region < cells_.size());
  AVCP_EXPECT(vehicle < vehicles_per_region_);
  return cells_[region][vehicle];
}

void TrustTracker::flag(core::RegionId region, std::size_t vehicle,
                        double score) {
  if (!params_.enabled) return;
  AVCP_EXPECT(score >= 0.0);
  cell(region, vehicle).pending += score;
}

void TrustTracker::flag_collusion(core::RegionId region, std::size_t vehicle,
                                  double score) {
  if (!params_.enabled) return;
  AVCP_EXPECT(score >= 0.0);
  cell(region, vehicle).pending_collusion += score;
}

void TrustTracker::end_round() {
  if (!params_.enabled) return;
  for (std::vector<Cell>& region : cells_) {
    for (Cell& c : region) {
      const bool clean = c.pending <= 0.0 && c.pending_collusion <= 0.0;
      if (clean) {
        c.good = std::min(c.good + params_.clean_gain, params_.good_cap);
      } else {
        c.bad += params_.flag_gain * std::min(c.pending, params_.flag_cap) +
                 params_.collusion_gain *
                     std::min(c.pending_collusion, params_.flag_cap);
      }
      c.pending = 0.0;
      c.pending_collusion = 0.0;
    }
  }
  ++rounds_;
}

double TrustTracker::trust(core::RegionId region, std::size_t vehicle) const {
  const Cell& c = cell(region, vehicle);
  return c.good / (c.good + c.bad);
}

bool TrustTracker::distrusted(core::RegionId region,
                              std::size_t vehicle) const {
  if (!params_.enabled) return false;
  return trust(region, vehicle) < params_.trust_floor;
}

std::size_t TrustTracker::distrusted_in(core::RegionId region) const {
  AVCP_EXPECT(region < cells_.size());
  if (!params_.enabled) return 0;
  std::size_t count = 0;
  for (std::size_t v = 0; v < cells_[region].size(); ++v) {
    if (distrusted(region, v)) ++count;
  }
  return count;
}

std::size_t TrustTracker::total_distrusted() const {
  std::size_t count = 0;
  for (core::RegionId i = 0; i < cells_.size(); ++i) {
    count += distrusted_in(i);
  }
  return count;
}

void TrustTracker::save_state(Serializer& s) const {
  s.put_u64(cells_.size());
  s.put_u64(vehicles_per_region_);
  s.put_u64(rounds_);
  for (const std::vector<Cell>& region : cells_) {
    for (const Cell& c : region) {
      s.put_f64(c.good);
      s.put_f64(c.bad);
      s.put_f64(c.pending);
      s.put_f64(c.pending_collusion);
    }
  }
}

void TrustTracker::load_state(Deserializer& d) {
  Deserializer::check(d.get_u64() == cells_.size(),
                      "TrustTracker region count mismatch");
  Deserializer::check(d.get_u64() == vehicles_per_region_,
                      "TrustTracker fleet size mismatch");
  rounds_ = static_cast<std::size_t>(d.get_u64());
  for (std::vector<Cell>& region : cells_) {
    for (Cell& c : region) {
      c.good = d.get_f64();
      c.bad = d.get_f64();
      c.pending = d.get_f64();
      c.pending_collusion = d.get_f64();
    }
  }
}

}  // namespace avcp::byzantine
