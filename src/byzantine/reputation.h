// Per-vehicle reputation scoring and the quarantine state machine.
//
// Single-round outlier rejection catches blatant telemetry lies, but a
// free-rider that falsifies only its *decision* claim looks clean in any
// one report — its tell is behavioural (it persistently uploads far less
// than peers making the same claim) and only emerges across rounds.
// ReputationTracker accumulates per-round residual scores per vehicle into
// an exponentially-decayed reputation and drives a two-state machine:
//
//     TRUSTED --[smoothed > quarantine_threshold,
//                after >= min_rounds observations]--> QUARANTINED
//     QUARANTINED --[smoothed <= rehab_threshold for
//                    rehab_rounds consecutive rounds]--> TRUSTED
//
// Quarantined vehicles keep being scored (their residuals are still
// computed against the trusted cohort), so a falsely-quarantined honest
// vehicle decays back below rehab_threshold and is released, while a
// persistent attacker keeps refreshing its score and stays in. Transitions
// are recorded as events for RoundReport / sim::metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "core/game.h"

namespace avcp::byzantine {

struct ReputationParams {
  /// EWMA decay: smoothed <- decay * smoothed + (1 - decay) * round_score.
  double decay = 0.8;
  double quarantine_threshold = 2.0;
  /// Smoothed score a quarantined vehicle must stay at or below to count a
  /// round toward rehabilitation.
  double rehab_threshold = 0.5;
  /// Consecutive clean rounds before a quarantined vehicle is released.
  std::size_t rehab_rounds = 8;
  /// Rounds observed before the first quarantine may fire (a blind-start
  /// guard: one early residual spike is not persistence).
  std::size_t min_rounds = 4;
  /// Per-round clip on the raw score; keeps one astronomical telemetry
  /// residual from dominating the EWMA forever.
  double score_cap = 6.0;
  /// Permanent-suspicion floor for repeat offenders: once a vehicle has
  /// been quarantined, its smoothed score never decays below this value.
  /// A released offender therefore re-enters quarantine faster than a
  /// first-time one — the counter to build-then-defect cycling, which
  /// relies on the EWMA forgetting each burst completely. 0 (default)
  /// disables the floor and keeps pre-existing trajectories bit-identical.
  double decay_floor = 0.0;

  /// Range-checks every field (same contract style as faults::FaultParams):
  /// decay in [0, 1), thresholds ordered, counters >= 1, cap and floor
  /// positive and consistent. Called by every consumer's constructor;
  /// violations raise ContractViolation.
  void validate() const;
};

/// A quarantine transition (quarantined == false is a release).
struct QuarantineEvent {
  std::size_t round = 0;
  core::RegionId region = 0;
  std::size_t vehicle = 0;
  bool quarantined = true;
};

class ReputationTracker {
 public:
  ReputationTracker(std::size_t num_regions, std::size_t vehicles_per_region,
                    ReputationParams params = {});

  const ReputationParams& params() const noexcept { return params_; }

  /// Adds to the vehicle's raw score for the current round (telemetry and
  /// behavioural residuals accumulate; end_round folds them in).
  void observe(core::RegionId region, std::size_t vehicle, double score);

  /// Applies decay and state transitions for every vehicle and clears the
  /// pending raw scores. `round` stamps the emitted events.
  void end_round(std::size_t round);

  bool quarantined(core::RegionId region, std::size_t vehicle) const;
  double score(core::RegionId region, std::size_t vehicle) const;

  std::size_t quarantined_in(core::RegionId region) const;
  std::size_t total_quarantined() const;

  /// Rounds folded in so far (== end_round calls).
  std::size_t rounds() const noexcept { return rounds_; }

  const std::vector<QuarantineEvent>& events() const noexcept {
    return events_;
  }

  /// Checkpoint hooks: every cell's EWMA, pending score, rehab streak and
  /// quarantine flag, the round counter, and the event log — the complete
  /// cross-round state of the tracker. load_state rejects a snapshot whose
  /// fleet shape disagrees with the live tracker.
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);

 private:
  struct Cell {
    double smoothed = 0.0;
    double pending = 0.0;
    std::size_t clean_streak = 0;
    bool quarantined = false;
    /// The vehicle has been quarantined at least once (drives the
    /// decay_floor permanent-suspicion semantics).
    bool ever_quarantined = false;
  };

  Cell& cell(core::RegionId region, std::size_t vehicle);
  const Cell& cell(core::RegionId region, std::size_t vehicle) const;

  ReputationParams params_;
  std::size_t vehicles_per_region_;
  std::size_t rounds_ = 0;
  std::vector<std::vector<Cell>> cells_;
  std::vector<QuarantineEvent> events_;
};

}  // namespace avcp::byzantine
