// Per-vehicle telemetry reports (framework step S1, hardened).
//
// The paper's S1 report carries only the vehicle's data-sharing decision;
// the cloud trusts it implicitly. A production control plane also ships the
// telemetry channels the cloud's model consumes — the region utility
// coefficient beta, the sharing frequency gamma, and the local traffic
// density that shapes the desired fields — and none of them can be trusted
// either: a single vehicle that falsifies its report can steer a region's
// desired field arbitrarily. VehicleReport is the unit the Byzantine-robust
// ingestion path (robust_aggregator.h, report_pipeline.h) aggregates and
// the AdversaryModel corrupts.
#pragma once

#include "core/lattice.h"

namespace avcp::byzantine {

/// What one vehicle tells its edge server (and, through it, the cloud)
/// each round. Honest vehicles report ground truth; adversarial vehicles
/// falsify any subset of the channels (adversary_model.h).
struct VehicleReport {
  /// Claimed data-sharing decision (the S1 channel of the paper).
  core::DecisionId decision = 0;
  /// Claimed region utility coefficient beta_i.
  double beta = 0.0;
  /// Claimed sharing frequency (the vehicle's view of gamma).
  double gamma = 0.0;
  /// Claimed local traffic density (vehicles observed nearby).
  double density = 0.0;
};

}  // namespace avcp::byzantine
