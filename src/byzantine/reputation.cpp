#include "byzantine/reputation.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/serial.h"

namespace avcp::byzantine {

namespace {

/// A decayed EWMA below this is indistinguishable from clean: it is snapped
/// to exactly 0 so a rehab_threshold of 0.0 ("release only a fully clean
/// score") is reachable in finitely many rounds instead of waiting for the
/// geometric decay to underflow. Far below every threshold any consumer
/// compares against, so trajectories of realistic configurations are
/// unaffected.
constexpr double kCleanSnap = 1e-12;

}  // namespace

void ReputationParams::validate() const {
  AVCP_EXPECT(decay >= 0.0 && decay < 1.0);
  AVCP_EXPECT(quarantine_threshold > 0.0);
  AVCP_EXPECT(rehab_threshold >= 0.0 &&
              rehab_threshold < quarantine_threshold);
  AVCP_EXPECT(rehab_rounds >= 1);
  AVCP_EXPECT(min_rounds >= 1);
  AVCP_EXPECT(score_cap > 0.0);
  AVCP_EXPECT(decay_floor >= 0.0 && decay_floor < quarantine_threshold);
}

ReputationTracker::ReputationTracker(std::size_t num_regions,
                                     std::size_t vehicles_per_region,
                                     ReputationParams params)
    : params_(params), vehicles_per_region_(vehicles_per_region) {
  AVCP_EXPECT(num_regions >= 1);
  AVCP_EXPECT(vehicles_per_region >= 1);
  params_.validate();
  cells_.assign(num_regions, std::vector<Cell>(vehicles_per_region));
}

ReputationTracker::Cell& ReputationTracker::cell(core::RegionId region,
                                                 std::size_t vehicle) {
  AVCP_EXPECT(region < cells_.size());
  AVCP_EXPECT(vehicle < vehicles_per_region_);
  return cells_[region][vehicle];
}

const ReputationTracker::Cell& ReputationTracker::cell(
    core::RegionId region, std::size_t vehicle) const {
  AVCP_EXPECT(region < cells_.size());
  AVCP_EXPECT(vehicle < vehicles_per_region_);
  return cells_[region][vehicle];
}

void ReputationTracker::observe(core::RegionId region, std::size_t vehicle,
                                double score) {
  AVCP_EXPECT(score >= 0.0);
  cell(region, vehicle).pending += score;
}

void ReputationTracker::end_round(std::size_t round) {
  for (core::RegionId i = 0; i < cells_.size(); ++i) {
    for (std::size_t v = 0; v < cells_[i].size(); ++v) {
      Cell& c = cells_[i][v];
      const double raw = std::min(c.pending, params_.score_cap);
      c.pending = 0.0;
      c.smoothed = params_.decay * c.smoothed + (1.0 - params_.decay) * raw;
      if (c.smoothed < kCleanSnap) c.smoothed = 0.0;
      if (c.ever_quarantined && c.smoothed < params_.decay_floor) {
        c.smoothed = params_.decay_floor;
      }
      if (!c.quarantined) {
        if (rounds_ + 1 >= params_.min_rounds &&
            c.smoothed > params_.quarantine_threshold) {
          c.quarantined = true;
          c.ever_quarantined = true;
          c.clean_streak = 0;
          events_.push_back({round, i, v, true});
        }
        continue;
      }
      // Closed boundary: a score sitting exactly AT the rehab threshold
      // counts as clean. The open comparison made rehab_threshold == 0.0 (a
      // "release only a fully clean score" policy) unreachable — a vehicle
      // quarantined on the exact final round of an attack window decayed
      // geometrically toward 0 but never strictly below it, so it never
      // re-entered the trusted scoring cohort. With the snap above and the
      // closed test the release fires after the decay completes.
      if (c.smoothed <= params_.rehab_threshold) {
        if (++c.clean_streak >= params_.rehab_rounds) {
          c.quarantined = false;
          c.clean_streak = 0;
          events_.push_back({round, i, v, false});
        }
      } else {
        c.clean_streak = 0;
      }
    }
  }
  ++rounds_;
}

bool ReputationTracker::quarantined(core::RegionId region,
                                    std::size_t vehicle) const {
  return cell(region, vehicle).quarantined;
}

double ReputationTracker::score(core::RegionId region,
                                std::size_t vehicle) const {
  return cell(region, vehicle).smoothed;
}

std::size_t ReputationTracker::quarantined_in(core::RegionId region) const {
  AVCP_EXPECT(region < cells_.size());
  std::size_t count = 0;
  for (const Cell& c : cells_[region]) {
    if (c.quarantined) ++count;
  }
  return count;
}

std::size_t ReputationTracker::total_quarantined() const {
  std::size_t count = 0;
  for (core::RegionId i = 0; i < cells_.size(); ++i) {
    count += quarantined_in(i);
  }
  return count;
}

void ReputationTracker::save_state(Serializer& s) const {
  s.put_u64(cells_.size());
  s.put_u64(vehicles_per_region_);
  s.put_u64(rounds_);
  for (const std::vector<Cell>& region : cells_) {
    for (const Cell& c : region) {
      s.put_f64(c.smoothed);
      s.put_f64(c.pending);
      s.put_u64(c.clean_streak);
      s.put_bool(c.quarantined);
      s.put_bool(c.ever_quarantined);
    }
  }
  s.put_u64(events_.size());
  for (const QuarantineEvent& e : events_) {
    s.put_u64(e.round);
    s.put_u32(e.region);
    s.put_u64(e.vehicle);
    s.put_bool(e.quarantined);
  }
}

void ReputationTracker::load_state(Deserializer& d) {
  Deserializer::check(d.get_u64() == cells_.size(),
                      "ReputationTracker region count mismatch");
  Deserializer::check(d.get_u64() == vehicles_per_region_,
                      "ReputationTracker fleet size mismatch");
  rounds_ = static_cast<std::size_t>(d.get_u64());
  for (std::vector<Cell>& region : cells_) {
    for (Cell& c : region) {
      c.smoothed = d.get_f64();
      c.pending = d.get_f64();
      c.clean_streak = static_cast<std::size_t>(d.get_u64());
      c.quarantined = d.get_bool();
      c.ever_quarantined = d.get_bool();
    }
  }
  const std::uint64_t num_events = d.get_u64();
  Deserializer::check(num_events <= d.remaining() / 21,
                      "ReputationTracker event count exceeds payload");
  events_.clear();
  events_.reserve(static_cast<std::size_t>(num_events));
  for (std::uint64_t i = 0; i < num_events; ++i) {
    QuarantineEvent e;
    e.round = static_cast<std::size_t>(d.get_u64());
    e.region = d.get_u32();
    e.vehicle = static_cast<std::size_t>(d.get_u64());
    e.quarantined = d.get_bool();
    events_.push_back(e);
  }
}

}  // namespace avcp::byzantine
