// Trace-driven vehicle-level simulation.
//
// The mean-field runner (runner.h) evolves region distributions directly;
// the agent simulator (agent_sim.h) tracks individuals but pins them to one
// region. This simulator closes the remaining gap to the paper's
// trace-driven evaluation: each *trace vehicle* carries a data-sharing
// decision through its actual GPS trajectory, so vehicles migrate between
// regions as they drive (the effect that motivates the paper's region-level
// analysis in the first place). Each policy round (the paper's 10 minutes):
//
//   1. every vehicle is located in the region where it spent most of the
//      round (vehicles without fixes are dormant and keep their decision);
//   2. region decision distributions are formed from the present vehicles;
//   3. fitness comes from the game (Eq. 4) at the controller's ratios;
//   4. revising vehicles imitate a random co-located peer with probability
//      proportional to the fitness gain (replicator in the large limit).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "cluster/region_clustering.h"
#include "common/rng.h"
#include "core/game.h"
#include "sim/measured_exchange.h"
#include "trace/types.h"

namespace avcp::sim {

/// Streaming presence-table builder: feed GPS fixes one at a time (any
/// order, any batching — e.g. straight from a TraceGenerator sink), then
/// hand the builder to TraceDrivenSim. The same fix multiset produces the
/// same presence table regardless of interleaving, so streaming ingestion
/// is bit-identical to materializing the whole trace first.
class TracePresenceBuilder {
 public:
  /// `region_of_segment` must stay valid for the duration of the add()
  /// calls (it is not copied). `round_s` is the policy-round length.
  TracePresenceBuilder(std::span<const cluster::RegionId> region_of_segment,
                       std::size_t num_vehicles, std::size_t num_regions,
                       double round_s, double trace_duration_s);

  /// Consumes one fix; throws ContractViolation on out-of-range vehicle,
  /// segment, or region ids.
  void add(const trace::GpsFix& fix);

  std::size_t num_vehicles() const noexcept { return num_vehicles_; }
  std::size_t num_regions() const noexcept { return num_regions_; }
  std::size_t num_rounds() const noexcept { return tally_.size(); }

  /// Presence per round: (vehicle, modal region) pairs ordered by vehicle
  /// id. Consumes the tally; call once.
  std::vector<std::vector<std::pair<trace::VehicleId, core::RegionId>>>
  build() &&;

 private:
  std::span<const cluster::RegionId> region_of_segment_;
  std::size_t num_vehicles_;
  std::size_t num_regions_;
  double round_s_;
  /// round -> vehicle -> (region -> fix count); the modal region wins.
  std::vector<std::map<trace::VehicleId, std::map<core::RegionId, std::size_t>>>
      tally_;
};

struct TraceReplayParams {
  double round_s = 600.0;       // paper: 10-minute rounds
  double revision_rate = 0.8;   // probability a present vehicle revises
  double imitation_scale = 0.5; // imitation prob = scale * fitness gain
  std::uint64_t seed = 321;
  /// When true, each round's per-region fitness is measured by running a
  /// synthetic data-plane exchange over the present decision mix
  /// (MeasuredExchange, kernel selected by `exchange.mode`) instead of the
  /// analytic Eq. (4) fitness. Measurement draws from hash-derived
  /// (round, region) streams, leaving the revision RNG untouched — the
  /// default (analytic) trajectories are bit-identical to before.
  bool measure_data_plane = false;
  MeasuredExchangeParams exchange;
};

class TraceDrivenSim {
 public:
  /// `game` must outlive the simulator. `region_of_segment` maps each road
  /// segment to its region (from Algorithm-1 clustering); fixes may be in
  /// any order. Vehicle ids must be < num_vehicles.
  TraceDrivenSim(const core::MultiRegionGame& game,
                 std::span<const trace::GpsFix> fixes,
                 std::span<const cluster::RegionId> region_of_segment,
                 std::size_t num_vehicles, double trace_duration_s,
                 TraceReplayParams params);

  /// Streaming variant: the presence table comes from a builder that was
  /// fed fixes incrementally, so the trace never has to be materialized.
  /// The builder's num_regions must match the game's.
  TraceDrivenSim(const core::MultiRegionGame& game,
                 TracePresenceBuilder&& presence, TraceReplayParams params);

  /// Number of policy rounds covered by the trace.
  std::size_t num_rounds() const noexcept { return presence_.size(); }

  /// Draws every vehicle's initial decision i.i.d. from `state`'s
  /// distribution of its *first* region of presence (uniform region 0 state
  /// works too — rows may be identical).
  void init_from(const core::GameState& state);

  /// Runs one round at sharing ratios x. Rounds past the trace end reuse
  /// the last round's presence pattern (the fleet keeps circulating).
  void step(std::span<const double> x);

  /// Decision distribution per region among the vehicles present in the
  /// round most recently stepped (dormant regions keep their previous
  /// distribution; initially uniform).
  const core::GameState& empirical_state() const noexcept { return state_; }

  /// Vehicles present in round r (for tests / reporting).
  std::size_t present_vehicles(std::size_t round) const;

  std::size_t current_round() const noexcept { return round_; }

  /// Checkpoint hooks: the round counter, the serial revision RNG (full
  /// stream position), per-vehicle decisions, the published distributions,
  /// and — under measured fitness — every evaluator's plane RNG position.
  /// The presence tables are rebuilt from the trace at construction and are
  /// not serialized. Call between step()s only; load_state throws
  /// SerialError on a shape or configuration mismatch.
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);

 private:
  const core::MultiRegionGame& game_;
  TraceReplayParams params_;
  Rng rng_;
  /// presence_[round] = list of (vehicle, region where it spent the round).
  std::vector<std::vector<std::pair<trace::VehicleId, core::RegionId>>>
      presence_;
  std::vector<core::DecisionId> decisions_;  // per vehicle
  core::GameState state_;                    // last published distributions
  std::size_t round_ = 0;
  /// Measured-fitness evaluators, one per region (deque: non-movable
  /// elements); empty when measure_data_plane is off.
  std::deque<MeasuredExchange> exchanges_;

  void refresh_state(
      const std::vector<std::pair<trace::VehicleId, core::RegionId>>& present);
};

}  // namespace avcp::sim
