#include "sim/runner.h"

#include <algorithm>
#include <cmath>

#include "checkpoint/checkpoint.h"
#include "common/contracts.h"
#include "common/serial.h"

namespace avcp::sim {

namespace {

/// Restores loop state (rounds, state, x, extras) from the newest intact
/// generation. Returns the number of completed rounds, or 0 (untouched
/// outputs) when no generation survives validation.
std::size_t try_resume(const RunCheckpointing& ckpt,
                       const core::MultiRegionGame& game,
                       core::GameState& state, std::vector<double>& x) {
  for (const auto& path : ckpt.store->generations()) {
    try {
      const auto reader = checkpoint::CheckpointReader::open(path);
      Deserializer d = reader.section(checkpoint::kSectionMeanField);
      const std::size_t rounds = static_cast<std::size_t>(d.get_u64());
      core::GameState restored_state;
      restored_state.load_state(d);
      Deserializer::check(restored_state.p.size() == game.num_regions(),
                          "mean-field snapshot: region count mismatch");
      std::vector<double> restored_x = get_f64_vec(d);
      Deserializer::check(restored_x.size() == x.size(),
                          "mean-field snapshot: ratio size mismatch");
      if (ckpt.load_extra != nullptr) {
        Deserializer aux = reader.section(checkpoint::kSectionAux);
        ckpt.load_extra(aux);
      }
      state = std::move(restored_state);
      x = std::move(restored_x);
      return rounds;
    } catch (const SerialError&) {
      // Torn/corrupt generation: fall back to the one before it.
    }
  }
  return 0;
}

void write_snapshot(const RunCheckpointing& ckpt, std::size_t rounds,
                    const core::GameState& state,
                    const std::vector<double>& x) {
  checkpoint::CheckpointWriter writer(rounds);
  Serializer& s = writer.section(checkpoint::kSectionMeanField);
  s.put_u64(rounds);
  state.save_state(s);
  put_f64_vec(s, x);
  if (ckpt.save_extra != nullptr) {
    ckpt.save_extra(writer.section(checkpoint::kSectionAux));
  }
  writer.write(ckpt.store->path_for(rounds));
  ckpt.store->prune();
}

}  // namespace

std::vector<double> RunResult::proportion_deltas() const {
  std::vector<double> deltas;
  if (trajectory.size() < 2) return deltas;
  deltas.reserve(trajectory.size() - 1);
  for (std::size_t t = 1; t < trajectory.size(); ++t) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < trajectory[t].p.size(); ++i) {
      for (std::size_t k = 0; k < trajectory[t].p[i].size(); ++k) {
        max_delta = std::max(
            max_delta,
            std::abs(trajectory[t].p[i][k] - trajectory[t - 1].p[i][k]));
      }
    }
    deltas.push_back(max_delta);
  }
  return deltas;
}

RunResult run_mean_field(const core::MultiRegionGame& game,
                         core::Controller& controller,
                         core::GameState initial, std::vector<double> x0,
                         const core::DesiredFields* stop_when,
                         const RunOptions& options) {
  AVCP_EXPECT(initial.p.size() == game.num_regions());
  AVCP_EXPECT(x0.size() == game.num_regions());
  // Option validation, FaultParams-style: reject misconfiguration at the
  // entry point instead of looping forever or never converging silently.
  AVCP_EXPECT(options.max_rounds > 0);
  AVCP_EXPECT(options.satisfy_tol >= 0.0);

  RunResult result;
  core::GameState state = std::move(initial);
  std::vector<double> x = std::move(x0);

  const RunCheckpointing* ckpt = options.checkpoints;
  AVCP_EXPECT(ckpt == nullptr || ckpt->store != nullptr);
  if (ckpt != nullptr && ckpt->resume) {
    result.rounds = try_resume(*ckpt, game, state, x);
  }

  if (options.record_trajectory) {
    result.trajectory.push_back(state);
  }
  // On a fresh run this is the t=0 early exit; on a resume it reproduces
  // the convergence break the straight-through run would have taken at
  // the restored round.
  if (stop_when != nullptr && stop_when->satisfied(state, options.satisfy_tol)) {
    result.converged = true;
    result.final_state = std::move(state);
    result.final_x = std::move(x);
    return result;
  }

  while (result.rounds < options.max_rounds) {
    x = controller.next_x(state, x);
    game.replicator_step(state, x);
    ++result.rounds;
    if (options.record_trajectory) {
      result.trajectory.push_back(state);
      result.x_history.push_back(x);
    }
    const bool satisfied = stop_when != nullptr &&
                           stop_when->satisfied(state, options.satisfy_tol);
    if (ckpt != nullptr &&
        (ckpt->policy.should_checkpoint(result.rounds) || satisfied)) {
      // Also snapshot on the convergence break, so a converged run's final
      // state survives a later crash-and-resume without re-stepping.
      write_snapshot(*ckpt, result.rounds, state, x);
    }
    if (satisfied) {
      result.converged = true;
      break;
    }
  }

  result.final_state = std::move(state);
  result.final_x = std::move(x);
  return result;
}

}  // namespace avcp::sim
