#include "sim/runner.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace avcp::sim {

std::vector<double> RunResult::proportion_deltas() const {
  std::vector<double> deltas;
  if (trajectory.size() < 2) return deltas;
  deltas.reserve(trajectory.size() - 1);
  for (std::size_t t = 1; t < trajectory.size(); ++t) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < trajectory[t].p.size(); ++i) {
      for (std::size_t k = 0; k < trajectory[t].p[i].size(); ++k) {
        max_delta = std::max(
            max_delta,
            std::abs(trajectory[t].p[i][k] - trajectory[t - 1].p[i][k]));
      }
    }
    deltas.push_back(max_delta);
  }
  return deltas;
}

RunResult run_mean_field(const core::MultiRegionGame& game,
                         core::Controller& controller,
                         core::GameState initial, std::vector<double> x0,
                         const core::DesiredFields* stop_when,
                         const RunOptions& options) {
  AVCP_EXPECT(initial.p.size() == game.num_regions());
  AVCP_EXPECT(x0.size() == game.num_regions());

  RunResult result;
  core::GameState state = std::move(initial);
  std::vector<double> x = std::move(x0);

  if (options.record_trajectory) {
    result.trajectory.push_back(state);
  }
  if (stop_when != nullptr && stop_when->satisfied(state, options.satisfy_tol)) {
    result.converged = true;
    result.final_state = std::move(state);
    result.final_x = std::move(x);
    return result;
  }

  for (std::size_t t = 0; t < options.max_rounds; ++t) {
    x = controller.next_x(state, x);
    game.replicator_step(state, x);
    ++result.rounds;
    if (options.record_trajectory) {
      result.trajectory.push_back(state);
      result.x_history.push_back(x);
    }
    if (stop_when != nullptr &&
        stop_when->satisfied(state, options.satisfy_tol)) {
      result.converged = true;
      break;
    }
  }

  result.final_state = std::move(state);
  result.final_x = std::move(x);
  return result;
}

}  // namespace avcp::sim
