// End-to-end trace-driven pipeline (paper §V-A/B preprocessing).
//
// city → traces → utility coefficients (BC or TD) → Algorithm-1 clustering
// → region graph with gamma frequencies → per-region game specs. The bench
// harnesses and the city_scale example consume the artifacts; nothing here
// runs the game itself (see runner.h).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/region_clustering.h"
#include "cluster/region_graph.h"
#include "core/game.h"
#include "roadnet/builders.h"
#include "spatial/voronoi.h"
#include "trace/density.h"
#include "trace/generator.h"

namespace avcp::sim {

/// Which road-segment utility coefficient drives the clustering.
enum class CoefficientKind : std::uint8_t {
  kBetweenness = 0,     // Eq. (2)
  kTrafficDensity = 1,  // Eq. (3), averaged over the trace span
};

struct PipelineConfig {
  roadnet::CityParams city{};
  trace::TraceParams traces{};
  std::size_t num_servers = 100;       // paper: 100 edge servers
  std::uint32_t num_regions = 20;      // paper: 20 regions
  CoefficientKind coefficient = CoefficientKind::kBetweenness;
  double td_window_s = 600.0;          // paper: 10-minute TD windows
  /// Region betas: normalised region-mean coefficients are mapped affinely
  /// into [beta_lo, beta_hi].
  double beta_lo = 0.8;
  double beta_hi = 2.0;
  /// Gammas are rescaled so the largest equals gamma_max.
  double gamma_max = 1.0;
  /// When false the generated trace is streamed through the coefficient and
  /// region-graph accumulators without ever being materialized (constant
  /// memory in the trace length; artifacts.fixes stays empty). The default
  /// keeps the fixes for consumers that replay them (TraceDrivenSim,
  /// bench_fig10). Artifacts are bit-identical either way.
  bool keep_fixes = true;
};

struct PipelineArtifacts {
  roadnet::RoadGraph graph;
  std::vector<trace::GpsFix> fixes;
  /// Per-segment utility coefficient (BC or average TD).
  std::vector<double> coefficients;
  std::vector<PointM> server_positions;
  std::vector<spatial::ServerId> cell_of_segment;
  cluster::Clustering clustering;
  cluster::RegionGraph region_graph{1};
  /// Ready-to-use game region specs (beta_i, gamma_ii, neighbour gammas).
  std::vector<core::RegionSpec> region_specs;
};

/// Runs the full preprocessing pipeline.
PipelineArtifacts build_pipeline(const PipelineConfig& config);

/// Derives game region specs from a clustering + region graph, mapping
/// normalised region-mean coefficients into [beta_lo, beta_hi] (exposed
/// separately for tests and custom pipelines).
std::vector<core::RegionSpec> make_region_specs(
    const cluster::Clustering& clustering,
    const cluster::RegionGraph& region_graph,
    std::span<const double> coefficients, double beta_lo, double beta_hi);

}  // namespace avcp::sim
