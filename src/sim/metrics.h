// Experiment-series export.
//
// Bench binaries print human-readable tables; downstream analysis wants the
// raw series. These helpers dump simulation results as CSV so any plotting
// stack can regenerate the paper's figures from our runs.
#pragma once

#include <iosfwd>

#include "core/game.h"
#include "sim/runner.h"

namespace avcp::sim {

/// Writes a recorded trajectory as long-format CSV:
///   round,region,decision,proportion
/// Requires the run to have been recorded (RunOptions::record_trajectory).
void write_trajectory_csv(std::ostream& out, const RunResult& result);

/// Writes the applied sharing ratios:
///   round,region,x
void write_ratio_csv(std::ostream& out, const RunResult& result);

/// Writes one state snapshot:
///   region,decision,proportion
void write_state_csv(std::ostream& out, const core::GameState& state);

}  // namespace avcp::sim
