// Experiment-series export and robustness metrics.
//
// Bench binaries print human-readable tables; downstream analysis wants the
// raw series. These helpers dump simulation results as CSV so any plotting
// stack can regenerate the paper's figures from our runs. The robustness
// helpers quantify fault-injection runs: how fast FDS re-converges after an
// outage and how much realized utility/privacy a fault rate costs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>

#include "core/fds.h"
#include "core/game.h"
#include "sim/runner.h"

namespace avcp::sim {

/// Writes a recorded trajectory as long-format CSV:
///   round,region,decision,proportion
/// Requires the run to have been recorded (RunOptions::record_trajectory).
void write_trajectory_csv(std::ostream& out, const RunResult& result);

/// Writes the applied sharing ratios:
///   round,region,x
void write_ratio_csv(std::ostream& out, const RunResult& result);

/// Writes one state snapshot:
///   region,decision,proportion
void write_state_csv(std::ostream& out, const core::GameState& state);

/// Sentinel for "never re-converged within the recorded trajectory".
inline constexpr std::size_t kNoReconvergence = ~std::size_t{0};

/// Rounds-to-reconverge after an outage: the number of rounds past
/// `resume_round` (the first round with reports/exchange restored) until
/// `trajectory` first satisfies `fields` again. trajectory[t] is the state
/// after round t; returns 0 if already satisfied at resume, or
/// kNoReconvergence if the recorded trajectory never recovers.
std::size_t rounds_to_reconverge(std::span<const core::GameState> trajectory,
                                 const core::DesiredFields& fields,
                                 std::size_t resume_round, double tol = 1e-9);

/// Utility/privacy degradation of a faulty run against its clean twin.
struct DegradationSummary {
  double mean_clean = 0.0;
  double mean_faulty = 0.0;
  double absolute_drop = 0.0;  // mean_clean - mean_faulty
  double relative_drop = 0.0;  // absolute_drop / |mean_clean| (0 if ~0)
};

/// Compares two per-round series of equal length (e.g. mean realized
/// utility with and without faults, same seed).
DegradationSummary degradation(std::span<const double> clean,
                               std::span<const double> faulty);

/// One row of a fault-injection time series (plant loss counters plus the
/// realized means they degraded).
struct FaultSeriesRow {
  std::size_t round = 0;
  std::size_t uploads_lost = 0;
  std::size_t deliveries_lost = 0;
  std::size_t regions_down = 0;
  double mean_utility = 0.0;
  double mean_privacy = 0.0;
};

/// Writes the fault series:
///   round,uploads_lost,deliveries_lost,regions_down,mean_utility,mean_privacy
void write_fault_series_csv(std::ostream& out,
                            std::span<const FaultSeriesRow> rows);

/// One (round, region) row of a fault series — the spatial split of
/// FaultSeriesRow, so degradation can be attributed to the region whose
/// links (or servers) actually ate the losses.
struct RegionFaultSeriesRow {
  std::size_t round = 0;
  core::RegionId region = 0;
  std::size_t uploads_lost = 0;
  std::size_t deliveries_lost = 0;
  bool region_down = false;
  double mean_utility = 0.0;
};

/// Writes the per-region fault series:
///   round,region,uploads_lost,deliveries_lost,region_down,mean_utility
void write_region_fault_series_csv(std::ostream& out,
                                   std::span<const RegionFaultSeriesRow> rows);

/// Mean absolute difference of two equal-length series (e.g. an attacked
/// run's per-region ratios against its clean twin).
double mean_abs_error(std::span<const double> a, std::span<const double> b);

/// Precision / recall of a detector's flags against ground truth, over any
/// flattened (region-major) population. Conventions for the degenerate
/// cases: precision is 1 when nothing was flagged (no false alarms were
/// raised), recall is 1 when there was nothing to find.
struct DetectionStats {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  double precision = 1.0;
  double recall = 1.0;
};

DetectionStats detection_stats(std::span<const std::uint8_t> truth,
                               std::span<const std::uint8_t> flagged);

/// One row of a Byzantine-robustness time series: how far the attacked
/// run's controls and states drifted from the clean twin, and what the
/// defence did about it.
struct ByzantineSeriesRow {
  std::size_t round = 0;
  double ratio_error = 0.0;  // mean |x_i - x_i_clean| over regions
  double state_error = 0.0;  // mean |p - p_clean| over (region, decision)
  std::size_t outliers_rejected = 0;
  std::size_t quarantined = 0;
};

/// Writes the Byzantine series:
///   round,ratio_error,state_error,outliers_rejected,quarantined
void write_byzantine_series_csv(std::ostream& out,
                                std::span<const ByzantineSeriesRow> rows);

}  // namespace avcp::sim
