// Time-varying utility coefficients (paper §VII, third future-work item:
// "how vehicles might change their decision from peak hours to off-peak
// hours").
//
// The paper's evaluation freezes each region's utility coefficient beta_i
// at its daily average. Here beta follows a schedule of epochs (e.g. one
// per hour, derived from windowed traffic density), the desired decision
// field is re-derived per epoch, and FDS re-shapes the persistent
// population after every switch. The per-epoch re-convergence time is the
// quantity of interest.
#pragma once

#include <functional>
#include <vector>

#include "cluster/region_clustering.h"
#include "core/fds.h"
#include "core/game.h"
#include "trace/density.h"

namespace avcp::sim {

/// Piecewise-constant per-region betas.
struct BetaSchedule {
  /// epochs[e][i] = beta of region i during epoch e. Must be non-empty
  /// with uniform region counts.
  std::vector<std::vector<double>> epochs;
  /// Policy rounds spent in each epoch.
  std::size_t rounds_per_epoch = 60;

  std::size_t num_epochs() const noexcept { return epochs.size(); }

  /// Betas active at round t (the last epoch persists past the schedule).
  const std::vector<double>& at_round(std::size_t t) const;
};

/// Derives an epoch schedule from windowed traffic density: consecutive
/// groups of `windows_per_epoch` TD windows are averaged per region and
/// min-max mapped into [beta_lo, beta_hi] (one mapping across the whole
/// schedule, so epochs remain comparable).
BetaSchedule beta_schedule_from_density(
    const trace::TrafficDensityAccumulator& density,
    const cluster::Clustering& clustering, std::size_t windows_per_epoch,
    double beta_lo, double beta_hi, std::size_t rounds_per_epoch);

/// Rebuilds a game with the same tables/topology but new betas.
core::MultiRegionGame with_betas(const core::MultiRegionGame& game,
                                 std::span<const double> betas);

/// Chooses the desired decision field for an epoch, given that epoch's game
/// and the population state at the switch.
using FieldFactory = std::function<core::DesiredFields(
    const core::MultiRegionGame& epoch_game, const core::GameState& state)>;

struct TimeVaryingOptions {
  core::FdsOptions fds;
  /// Diversity re-injected at each epoch switch (vehicles entering the area
  /// carry fresh default decisions): p <- (1-mix)*p + mix*uniform.
  double reseed_mix = 0.1;
  double satisfy_tol = 1e-9;
};

struct EpochOutcome {
  std::size_t rounds_to_converge = 0;  // rounds_per_epoch when unconverged
  bool converged = false;
  core::GameState state_at_end;
};

/// Runs FDS across the schedule with a persistent population. Returns one
/// outcome per epoch.
std::vector<EpochOutcome> run_time_varying(const core::MultiRegionGame& base,
                                           const BetaSchedule& schedule,
                                           const FieldFactory& field_factory,
                                           core::GameState initial,
                                           std::vector<double> x0,
                                           const TimeVaryingOptions& options);

}  // namespace avcp::sim
