#include "sim/metrics.h"

#include <cmath>
#include <ostream>
#include <string>

#include "common/contracts.h"
#include "common/csv.h"

namespace avcp::sim {

void write_trajectory_csv(std::ostream& out, const RunResult& result) {
  AVCP_EXPECT(!result.trajectory.empty());
  CsvWriter writer(out);
  writer.write_row({"round", "region", "decision", "proportion"});
  for (std::size_t t = 0; t < result.trajectory.size(); ++t) {
    const core::GameState& state = result.trajectory[t];
    for (std::size_t i = 0; i < state.p.size(); ++i) {
      for (std::size_t k = 0; k < state.p[i].size(); ++k) {
        writer.write_row({std::to_string(t), std::to_string(i),
                          std::to_string(k), std::to_string(state.p[i][k])});
      }
    }
  }
}

void write_ratio_csv(std::ostream& out, const RunResult& result) {
  AVCP_EXPECT(!result.x_history.empty());
  CsvWriter writer(out);
  writer.write_row({"round", "region", "x"});
  for (std::size_t t = 0; t < result.x_history.size(); ++t) {
    for (std::size_t i = 0; i < result.x_history[t].size(); ++i) {
      writer.write_row({std::to_string(t + 1), std::to_string(i),
                        std::to_string(result.x_history[t][i])});
    }
  }
}

std::size_t rounds_to_reconverge(std::span<const core::GameState> trajectory,
                                 const core::DesiredFields& fields,
                                 std::size_t resume_round, double tol) {
  for (std::size_t t = resume_round; t < trajectory.size(); ++t) {
    if (fields.satisfied(trajectory[t], tol)) return t - resume_round;
  }
  return kNoReconvergence;
}

DegradationSummary degradation(std::span<const double> clean,
                               std::span<const double> faulty) {
  AVCP_EXPECT(clean.size() == faulty.size());
  AVCP_EXPECT(!clean.empty());
  DegradationSummary summary;
  for (const double v : clean) summary.mean_clean += v;
  for (const double v : faulty) summary.mean_faulty += v;
  summary.mean_clean /= static_cast<double>(clean.size());
  summary.mean_faulty /= static_cast<double>(faulty.size());
  summary.absolute_drop = summary.mean_clean - summary.mean_faulty;
  const double scale = std::abs(summary.mean_clean);
  summary.relative_drop = scale > 1e-12 ? summary.absolute_drop / scale : 0.0;
  return summary;
}

void write_fault_series_csv(std::ostream& out,
                            std::span<const FaultSeriesRow> rows) {
  CsvWriter writer(out);
  writer.write_row({"round", "uploads_lost", "deliveries_lost", "regions_down",
                    "mean_utility", "mean_privacy"});
  for (const FaultSeriesRow& row : rows) {
    writer.write_row({std::to_string(row.round),
                      std::to_string(row.uploads_lost),
                      std::to_string(row.deliveries_lost),
                      std::to_string(row.regions_down),
                      std::to_string(row.mean_utility),
                      std::to_string(row.mean_privacy)});
  }
}

void write_state_csv(std::ostream& out, const core::GameState& state) {
  CsvWriter writer(out);
  writer.write_row({"region", "decision", "proportion"});
  for (std::size_t i = 0; i < state.p.size(); ++i) {
    for (std::size_t k = 0; k < state.p[i].size(); ++k) {
      writer.write_row({std::to_string(i), std::to_string(k),
                        std::to_string(state.p[i][k])});
    }
  }
}

}  // namespace avcp::sim
