#include "sim/metrics.h"

#include <ostream>
#include <string>

#include "common/contracts.h"
#include "common/csv.h"

namespace avcp::sim {

void write_trajectory_csv(std::ostream& out, const RunResult& result) {
  AVCP_EXPECT(!result.trajectory.empty());
  CsvWriter writer(out);
  writer.write_row({"round", "region", "decision", "proportion"});
  for (std::size_t t = 0; t < result.trajectory.size(); ++t) {
    const core::GameState& state = result.trajectory[t];
    for (std::size_t i = 0; i < state.p.size(); ++i) {
      for (std::size_t k = 0; k < state.p[i].size(); ++k) {
        writer.write_row({std::to_string(t), std::to_string(i),
                          std::to_string(k), std::to_string(state.p[i][k])});
      }
    }
  }
}

void write_ratio_csv(std::ostream& out, const RunResult& result) {
  AVCP_EXPECT(!result.x_history.empty());
  CsvWriter writer(out);
  writer.write_row({"round", "region", "x"});
  for (std::size_t t = 0; t < result.x_history.size(); ++t) {
    for (std::size_t i = 0; i < result.x_history[t].size(); ++i) {
      writer.write_row({std::to_string(t + 1), std::to_string(i),
                        std::to_string(result.x_history[t][i])});
    }
  }
}

void write_state_csv(std::ostream& out, const core::GameState& state) {
  CsvWriter writer(out);
  writer.write_row({"region", "decision", "proportion"});
  for (std::size_t i = 0; i < state.p.size(); ++i) {
    for (std::size_t k = 0; k < state.p[i].size(); ++k) {
      writer.write_row({std::to_string(i), std::to_string(k),
                        std::to_string(state.p[i][k])});
    }
  }
}

}  // namespace avcp::sim
