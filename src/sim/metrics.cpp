#include "sim/metrics.h"

#include <cmath>
#include <ostream>
#include <string>

#include "common/contracts.h"
#include "common/csv.h"

namespace avcp::sim {

void write_trajectory_csv(std::ostream& out, const RunResult& result) {
  AVCP_EXPECT(!result.trajectory.empty());
  CsvWriter writer(out);
  writer.write_row({"round", "region", "decision", "proportion"});
  for (std::size_t t = 0; t < result.trajectory.size(); ++t) {
    const core::GameState& state = result.trajectory[t];
    for (std::size_t i = 0; i < state.p.size(); ++i) {
      for (std::size_t k = 0; k < state.p[i].size(); ++k) {
        writer.write_row({std::to_string(t), std::to_string(i),
                          std::to_string(k), std::to_string(state.p[i][k])});
      }
    }
  }
}

void write_ratio_csv(std::ostream& out, const RunResult& result) {
  AVCP_EXPECT(!result.x_history.empty());
  CsvWriter writer(out);
  writer.write_row({"round", "region", "x"});
  for (std::size_t t = 0; t < result.x_history.size(); ++t) {
    for (std::size_t i = 0; i < result.x_history[t].size(); ++i) {
      writer.write_row({std::to_string(t + 1), std::to_string(i),
                        std::to_string(result.x_history[t][i])});
    }
  }
}

std::size_t rounds_to_reconverge(std::span<const core::GameState> trajectory,
                                 const core::DesiredFields& fields,
                                 std::size_t resume_round, double tol) {
  for (std::size_t t = resume_round; t < trajectory.size(); ++t) {
    if (fields.satisfied(trajectory[t], tol)) return t - resume_round;
  }
  return kNoReconvergence;
}

DegradationSummary degradation(std::span<const double> clean,
                               std::span<const double> faulty) {
  AVCP_EXPECT(clean.size() == faulty.size());
  AVCP_EXPECT(!clean.empty());
  DegradationSummary summary;
  for (const double v : clean) summary.mean_clean += v;
  for (const double v : faulty) summary.mean_faulty += v;
  summary.mean_clean /= static_cast<double>(clean.size());
  summary.mean_faulty /= static_cast<double>(faulty.size());
  summary.absolute_drop = summary.mean_clean - summary.mean_faulty;
  const double scale = std::abs(summary.mean_clean);
  summary.relative_drop = scale > 1e-12 ? summary.absolute_drop / scale : 0.0;
  return summary;
}

void write_fault_series_csv(std::ostream& out,
                            std::span<const FaultSeriesRow> rows) {
  CsvWriter writer(out);
  writer.write_row({"round", "uploads_lost", "deliveries_lost", "regions_down",
                    "mean_utility", "mean_privacy"});
  for (const FaultSeriesRow& row : rows) {
    writer.write_row({std::to_string(row.round),
                      std::to_string(row.uploads_lost),
                      std::to_string(row.deliveries_lost),
                      std::to_string(row.regions_down),
                      std::to_string(row.mean_utility),
                      std::to_string(row.mean_privacy)});
  }
}

void write_region_fault_series_csv(std::ostream& out,
                                   std::span<const RegionFaultSeriesRow> rows) {
  CsvWriter writer(out);
  writer.write_row({"round", "region", "uploads_lost", "deliveries_lost",
                    "region_down", "mean_utility"});
  for (const RegionFaultSeriesRow& row : rows) {
    writer.write_row({std::to_string(row.round), std::to_string(row.region),
                      std::to_string(row.uploads_lost),
                      std::to_string(row.deliveries_lost),
                      std::to_string(row.region_down ? 1 : 0),
                      std::to_string(row.mean_utility)});
  }
}

double mean_abs_error(std::span<const double> a, std::span<const double> b) {
  AVCP_EXPECT(a.size() == b.size());
  AVCP_EXPECT(!a.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

DetectionStats detection_stats(std::span<const std::uint8_t> truth,
                               std::span<const std::uint8_t> flagged) {
  AVCP_EXPECT(truth.size() == flagged.size());
  DetectionStats stats;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const bool is_attacker = truth[i] != 0;
    const bool is_flagged = flagged[i] != 0;
    if (is_attacker && is_flagged) ++stats.true_positives;
    if (!is_attacker && is_flagged) ++stats.false_positives;
    if (is_attacker && !is_flagged) ++stats.false_negatives;
  }
  const std::size_t flagged_total = stats.true_positives + stats.false_positives;
  const std::size_t attackers = stats.true_positives + stats.false_negatives;
  if (flagged_total > 0) {
    stats.precision = static_cast<double>(stats.true_positives) /
                      static_cast<double>(flagged_total);
  }
  if (attackers > 0) {
    stats.recall = static_cast<double>(stats.true_positives) /
                   static_cast<double>(attackers);
  }
  return stats;
}

void write_byzantine_series_csv(std::ostream& out,
                                std::span<const ByzantineSeriesRow> rows) {
  CsvWriter writer(out);
  writer.write_row(
      {"round", "ratio_error", "state_error", "outliers_rejected",
       "quarantined"});
  for (const ByzantineSeriesRow& row : rows) {
    writer.write_row({std::to_string(row.round),
                      std::to_string(row.ratio_error),
                      std::to_string(row.state_error),
                      std::to_string(row.outliers_rejected),
                      std::to_string(row.quarantined)});
  }
}

void write_state_csv(std::ostream& out, const core::GameState& state) {
  CsvWriter writer(out);
  writer.write_row({"region", "decision", "proportion"});
  for (std::size_t i = 0; i < state.p.size(); ++i) {
    for (std::size_t k = 0; k < state.p[i].size(); ++k) {
      writer.write_row({std::to_string(i), std::to_string(k),
                        std::to_string(state.p[i][k])});
    }
  }
}

}  // namespace avcp::sim
