// Round-driven mean-field simulation loop (paper §II rounds t = 1..T).
//
// Each round the controller (cloud) publishes the sharing-ratio vector from
// the observed decision distribution (step S1), then the populations evolve
// one replicator step under those ratios (S2 + decision revision). The
// runner records the trajectory and stops when the desired decision fields
// are met (or on the round cap).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "checkpoint/policy.h"
#include "core/fds.h"
#include "core/game.h"

namespace avcp::sim {

/// Crash-tolerance wiring for run_mean_field: where generations live, when
/// to snapshot, and (optionally) extra state riding in each snapshot —
/// e.g. a stateful controller wrapper like faults::DegradedController.
/// With `resume` set the runner restores the newest intact generation
/// before stepping (skipping torn or corrupt files), so restore + the
/// remaining rounds reproduces the uninterrupted trajectory bit for bit.
struct RunCheckpointing {
  const checkpoint::CheckpointStore* store = nullptr;
  checkpoint::CheckpointPolicy policy;
  bool resume = true;
  /// Optional auxiliary payload (controller state). Both or neither.
  std::function<void(Serializer&)> save_extra;
  std::function<void(Deserializer&)> load_extra;
};

struct RunOptions {
  std::size_t max_rounds = 5000;
  /// Record p and x per round (memory: rounds * M * K doubles).
  bool record_trajectory = true;
  /// Tolerance passed to DesiredFields::satisfied.
  double satisfy_tol = 1e-9;
  /// Null = no checkpointing (the pre-existing behaviour, bit-identical).
  const RunCheckpointing* checkpoints = nullptr;
};

struct RunResult {
  bool converged = false;
  /// Rounds executed until convergence (or max_rounds).
  std::size_t rounds = 0;
  core::GameState final_state;
  std::vector<double> final_x;
  /// trajectory[t] = state after round t (index 0 is the initial state).
  std::vector<core::GameState> trajectory;
  /// x_history[t] = ratios applied in round t+1.
  std::vector<std::vector<double>> x_history;

  /// Max absolute per-coordinate change between consecutive recorded
  /// states — the Fig. 10 bottom-panel series. Empty without a trajectory.
  std::vector<double> proportion_deltas() const;
};

/// Runs the loop. `stop_when` may be null (always runs max_rounds).
RunResult run_mean_field(const core::MultiRegionGame& game,
                         core::Controller& controller,
                         core::GameState initial, std::vector<double> x0,
                         const core::DesiredFields* stop_when,
                         const RunOptions& options = {});

}  // namespace avcp::sim
