#include "sim/trace_replay.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/contracts.h"
#include "common/serial.h"

namespace avcp::sim {

namespace {
// derive_seed tag for the measured-fitness streams (disjoint from the
// revision engine, which is seeded directly from params.seed).
constexpr std::uint64_t kTraceMeasureStream = 0xA4;

sim::TracePresenceBuilder presence_from_fixes(
    std::span<const trace::GpsFix> fixes,
    std::span<const cluster::RegionId> region_of_segment,
    std::size_t num_vehicles, std::size_t num_regions, double round_s,
    double trace_duration_s) {
  sim::TracePresenceBuilder builder(region_of_segment, num_vehicles,
                                    num_regions, round_s, trace_duration_s);
  for (const trace::GpsFix& fix : fixes) builder.add(fix);
  return builder;
}
}  // namespace

TracePresenceBuilder::TracePresenceBuilder(
    std::span<const cluster::RegionId> region_of_segment,
    std::size_t num_vehicles, std::size_t num_regions, double round_s,
    double trace_duration_s)
    : region_of_segment_(region_of_segment),
      num_vehicles_(num_vehicles),
      num_regions_(num_regions),
      round_s_(round_s) {
  AVCP_EXPECT(round_s > 0.0);
  AVCP_EXPECT(trace_duration_s > 0.0);
  AVCP_EXPECT(num_vehicles >= 1);
  AVCP_EXPECT(num_regions >= 1);
  const auto num_rounds =
      static_cast<std::size_t>(std::ceil(trace_duration_s / round_s));
  AVCP_EXPECT(num_rounds >= 1);
  tally_.resize(num_rounds);
}

void TracePresenceBuilder::add(const trace::GpsFix& fix) {
  AVCP_EXPECT(fix.vehicle < num_vehicles_);
  AVCP_EXPECT(fix.segment < region_of_segment_.size());
  const auto round = static_cast<std::size_t>(fix.time_s / round_s_);
  if (round >= tally_.size()) return;
  const core::RegionId region = region_of_segment_[fix.segment];
  AVCP_EXPECT(region < num_regions_);
  ++tally_[round][fix.vehicle][region];
}

std::vector<std::vector<std::pair<trace::VehicleId, core::RegionId>>>
TracePresenceBuilder::build() && {
  std::vector<std::vector<std::pair<trace::VehicleId, core::RegionId>>>
      presence(tally_.size());
  for (std::size_t r = 0; r < tally_.size(); ++r) {
    for (const auto& [vehicle, regions] : tally_[r]) {
      core::RegionId modal = 0;
      std::size_t best = 0;
      for (const auto& [region, count] : regions) {
        if (count > best) {
          best = count;
          modal = region;
        }
      }
      presence[r].emplace_back(vehicle, modal);
    }
    tally_[r].clear();
  }
  return presence;
}

TraceDrivenSim::TraceDrivenSim(const core::MultiRegionGame& game,
                               std::span<const trace::GpsFix> fixes,
                               std::span<const cluster::RegionId> region_of_segment,
                               std::size_t num_vehicles,
                               double trace_duration_s,
                               TraceReplayParams params)
    : TraceDrivenSim(game,
                     presence_from_fixes(fixes, region_of_segment,
                                         num_vehicles, game.num_regions(),
                                         params.round_s, trace_duration_s),
                     params) {}

TraceDrivenSim::TraceDrivenSim(const core::MultiRegionGame& game,
                               TracePresenceBuilder&& presence,
                               TraceReplayParams params)
    : game_(game), params_(params), rng_(params.seed) {
  AVCP_EXPECT(presence.num_regions() == game.num_regions());
  AVCP_EXPECT(params_.revision_rate >= 0.0 && params_.revision_rate <= 1.0);
  AVCP_EXPECT(params_.imitation_scale > 0.0);

  const std::size_t num_vehicles = presence.num_vehicles();
  presence_ = std::move(presence).build();

  decisions_.assign(num_vehicles, 0);
  state_ = game.uniform_state();
  if (params_.measure_data_plane) {
    for (core::RegionId i = 0; i < game.num_regions(); ++i) {
      exchanges_.emplace_back(
          game, params_.exchange,
          derive_seed(params_.seed, {kTraceMeasureStream, i}));
    }
  }
}

void TraceDrivenSim::init_from(const core::GameState& state) {
  AVCP_EXPECT(state.p.size() == game_.num_regions());
  for (const auto& row : state.p) core::check_distribution(row);
  for (auto& decision : decisions_) {
    decision = static_cast<core::DecisionId>(rng_.weighted_index(state.p[0]));
  }
  state_ = game_.uniform_state();
  if (!presence_.empty()) refresh_state(presence_.front());
  round_ = 0;
}

std::size_t TraceDrivenSim::present_vehicles(std::size_t round) const {
  AVCP_EXPECT(round < presence_.size());
  return presence_[round].size();
}

void TraceDrivenSim::refresh_state(
    const std::vector<std::pair<trace::VehicleId, core::RegionId>>& present) {
  const std::size_t k = game_.num_decisions();
  std::vector<std::vector<double>> counts(game_.num_regions(),
                                          std::vector<double>(k, 0.0));
  std::vector<double> totals(game_.num_regions(), 0.0);
  for (const auto& [vehicle, region] : present) {
    counts[region][decisions_[vehicle]] += 1.0;
    totals[region] += 1.0;
  }
  for (core::RegionId i = 0; i < game_.num_regions(); ++i) {
    if (totals[i] <= 0.0) continue;  // dormant region keeps its distribution
    for (std::size_t d = 0; d < k; ++d) {
      state_.p[i][d] = counts[i][d] / totals[i];
    }
  }
}

void TraceDrivenSim::step(std::span<const double> x) {
  AVCP_EXPECT(x.size() == game_.num_regions());
  const auto& present =
      presence_[std::min(round_, presence_.size() - 1)];
  refresh_state(present);

  // Fitness of every decision in every region against the snapshot:
  // analytic Eq. (4), or a measured data-plane exchange over the present
  // mix (hash-derived streams; the revision engine rng_ is untouched).
  std::vector<std::vector<double>> q(game_.num_regions());
  for (core::RegionId i = 0; i < game_.num_regions(); ++i) {
    q[i] = params_.measure_data_plane
               ? exchanges_[i].per_decision_fitness(
                     state_.p[i], game_.region(i).beta, x[i],
                     derive_seed(params_.seed, {kTraceMeasureStream, round_, i}))
               : game_.region_fitness(state_, x, i);
  }

  // Group present vehicles by region for peer sampling.
  std::vector<std::vector<trace::VehicleId>> by_region(game_.num_regions());
  for (const auto& [vehicle, region] : present) {
    by_region[region].push_back(vehicle);
  }

  // Pairwise proportional imitation against the start-of-round snapshot.
  const std::vector<core::DecisionId> before = decisions_;
  for (const auto& [vehicle, region] : present) {
    const auto& peers = by_region[region];
    if (peers.size() < 2) continue;
    if (!rng_.bernoulli(params_.revision_rate)) continue;
    trace::VehicleId peer = vehicle;
    for (int attempt = 0; attempt < 8 && peer == vehicle; ++attempt) {
      peer = peers[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(peers.size()) - 1))];
    }
    if (peer == vehicle) continue;
    const core::DecisionId mine = before[vehicle];
    const core::DecisionId theirs = before[peer];
    if (mine == theirs) continue;
    const double gain = q[region][theirs] - q[region][mine];
    if (gain <= 0.0) continue;
    if (rng_.bernoulli(std::min(1.0, params_.imitation_scale * gain))) {
      decisions_[vehicle] = theirs;
    }
  }

  refresh_state(present);
  ++round_;
}

void TraceDrivenSim::save_state(Serializer& s) const {
  s.put_u64(game_.num_regions());
  s.put_u64(decisions_.size());
  s.put_u64(params_.seed);
  s.put_bool(params_.measure_data_plane);
  s.put_u64(round_);
  rng_.save_state(s);
  put_u32_vec(s, decisions_);
  state_.save_state(s);
  for (const MeasuredExchange& exchange : exchanges_) {
    exchange.save_state(s);
  }
}

void TraceDrivenSim::load_state(Deserializer& d) {
  Deserializer::check(d.get_u64() == game_.num_regions(),
                      "TraceReplay snapshot: region count mismatch");
  Deserializer::check(d.get_u64() == decisions_.size(),
                      "TraceReplay snapshot: vehicle count mismatch");
  Deserializer::check(d.get_u64() == params_.seed,
                      "TraceReplay snapshot: seed mismatch");
  Deserializer::check(d.get_bool() == params_.measure_data_plane,
                      "TraceReplay snapshot: fitness mode mismatch");
  round_ = d.get_u64();
  rng_.load_state(d);
  std::vector<core::DecisionId> decisions = get_u32_vec(d);
  Deserializer::check(decisions.size() == decisions_.size(),
                      "TraceReplay snapshot: decisions size mismatch");
  for (const core::DecisionId decision : decisions) {
    Deserializer::check(decision < game_.num_decisions(),
                        "TraceReplay snapshot: decision id out of range");
  }
  decisions_ = std::move(decisions);
  state_.load_state(d);
  for (MeasuredExchange& exchange : exchanges_) {
    exchange.load_state(d);
  }
}

}  // namespace avcp::sim
