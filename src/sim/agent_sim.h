// Agent-based micro-simulation of decision revision.
//
// Where runner.h evolves the mean-field distributions directly, this
// simulator tracks N individual vehicles per region, each holding one
// data-sharing decision. Every round a revising vehicle samples a random
// peer of its own region and imitates the peer's decision with probability
// proportional to the positive fitness difference — pairwise proportional
// imitation, whose large-population limit is exactly the replicator
// dynamics of Eq. (5). Tests use it to validate the mean-field model; the
// benches use it for failure-injection ablations (defector vehicles that
// never revise).
//
// Regions are independent within a round (fitness is computed against the
// synchronous start-of-round snapshot), so the per-region fitness +
// revision work fans out over a ThreadPool. Every (round, region) draws
// from its own counter-based RNG stream derived by pure hash from the seed
// (common/rng.h derive_seed), so trajectories are bit-identical at every
// thread count and independent of region iteration order.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "byzantine/adversary_model.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/game.h"
#include "faults/fault_model.h"
#include "sim/measured_exchange.h"

namespace avcp::sim {

struct AgentSimParams {
  std::size_t vehicles_per_region = 500;
  /// Probability a vehicle revises its decision each round.
  double revision_rate = 1.0;
  /// Imitation probability = clamp(scale * (q_peer - q_self), 0, 1).
  /// Matches the mean-field step when scale equals the game's step_size.
  /// Defector vehicles (ones that never revise) are injected via a
  /// faults::FaultModel carrying FaultParams::defector_fraction — the same
  /// schedule the system plant sees; there is no simulator-local knob.
  double imitation_scale = 1.0;
  std::uint64_t seed = 99;
  /// When true, per-decision fitness comes from a measured data-plane
  /// exchange (MeasuredExchange, with `exchange.mode` selecting the
  /// kernel) instead of the analytic Eq. (4) fitness. Still bit-identical
  /// at every thread count: each region owns its evaluator and every
  /// (round, region) synthesis uses its own hash-derived stream.
  bool measured_fitness = false;
  MeasuredExchangeParams exchange;
  /// Worker lanes for the per-region round work. 0 = hardware concurrency.
  /// Purely a throughput knob: the trajectory is bit-identical at every
  /// value (per-region RNG streams, no cross-region reduction).
  std::size_t num_threads = 1;
};

class AgentBasedSim {
 public:
  /// `game` must outlive the simulator. `faults` (optional; must outlive
  /// the simulator) injects failures: defector vehicles that never revise,
  /// and region outages during which a region's fleet receives no fitness
  /// signal and holds its decisions for the round.
  AgentBasedSim(const core::MultiRegionGame& game, AgentSimParams params,
                const faults::FaultModel* faults = nullptr,
                const byzantine::AdversaryModel* adversary = nullptr);

  /// Draws every vehicle's decision i.i.d. from `state`'s per-region
  /// distribution.
  void init_from(const core::GameState& state);

  /// One revision round at sharing ratios x. Fitness is computed from the
  /// empirical distribution at the start of the round (synchronous).
  void step(std::span<const double> x);

  /// Empirical per-region decision distribution (true decisions).
  core::GameState empirical_state() const;

  /// The distribution the cloud would see from a trusting mean over
  /// *claimed* decisions: attacking vehicles report their falsified claim
  /// (byzantine::AdversaryModel) instead of their true decision. Equal to
  /// empirical_state() when no adversary is attached.
  core::GameState reported_state() const;

  std::size_t vehicles_per_region() const noexcept {
    return params_.vehicles_per_region;
  }

  /// Checkpoint hooks: round/init counters, the fleet's decisions, and —
  /// under measured fitness — every evaluator's plane RNG position. The
  /// defector table is reconstructed from the fault model at construction
  /// and is not serialized. Call between step()s only. load_state throws
  /// SerialError on a shape or configuration mismatch.
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);

 private:
  const core::MultiRegionGame& game_;
  AgentSimParams params_;
  const faults::FaultModel* faults_;
  const byzantine::AdversaryModel* adversary_;
  std::size_t round_ = 0;
  /// Bumped per init_from call so re-seeding draws fresh streams.
  std::size_t init_epoch_ = 0;
  ThreadPool pool_;
  /// decisions_[i][v] = decision of vehicle v in region i.
  std::vector<std::vector<core::DecisionId>> decisions_;
  /// defector_[i][v] = true if the vehicle never revises.
  std::vector<std::vector<bool>> defector_;
  /// Measured-fitness evaluators, one per region (deque: non-movable
  /// elements); empty when measured_fitness is off. Region task i is the
  /// sole user of exchanges_[i], preserving thread-count invariance.
  std::deque<MeasuredExchange> exchanges_;
  /// Cost-balanced chunk plan for the per-region dispatch (per-region cost
  /// = vehicles × classes). Fleet shapes are fixed at construction, so the
  /// plan is computed once; boundaries are thread-count independent.
  std::vector<std::uint32_t> chunk_plan_;
};

}  // namespace avcp::sim
