#include "sim/time_varying.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace avcp::sim {

const std::vector<double>& BetaSchedule::at_round(std::size_t t) const {
  AVCP_EXPECT(!epochs.empty());
  AVCP_EXPECT(rounds_per_epoch > 0);
  const std::size_t epoch = std::min(t / rounds_per_epoch, epochs.size() - 1);
  return epochs[epoch];
}

BetaSchedule beta_schedule_from_density(
    const trace::TrafficDensityAccumulator& density,
    const cluster::Clustering& clustering, std::size_t windows_per_epoch,
    double beta_lo, double beta_hi, std::size_t rounds_per_epoch) {
  AVCP_EXPECT(windows_per_epoch >= 1);
  AVCP_EXPECT(beta_hi >= beta_lo);
  AVCP_EXPECT(rounds_per_epoch >= 1);
  AVCP_EXPECT(density.num_windows() >= windows_per_epoch);

  const std::size_t num_regions = clustering.num_regions();
  const std::size_t num_epochs = density.num_windows() / windows_per_epoch;

  // Raw per-epoch, per-region mean densities.
  std::vector<std::vector<double>> raw(num_epochs,
                                       std::vector<double>(num_regions, 0.0));
  for (std::size_t e = 0; e < num_epochs; ++e) {
    for (cluster::RegionId r = 0; r < num_regions; ++r) {
      double total = 0.0;
      for (std::size_t w = 0; w < windows_per_epoch; ++w) {
        for (const roadnet::SegmentId s : clustering.members[r]) {
          total += density.density(e * windows_per_epoch + w, s);
        }
      }
      raw[e][r] = total / (static_cast<double>(windows_per_epoch) *
                           static_cast<double>(clustering.members[r].size()));
    }
  }

  // One min-max mapping across the whole schedule.
  double lo = raw[0][0];
  double hi = raw[0][0];
  for (const auto& epoch : raw) {
    for (const double v : epoch) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const double range = hi - lo;
  BetaSchedule schedule;
  schedule.rounds_per_epoch = rounds_per_epoch;
  schedule.epochs = std::move(raw);
  for (auto& epoch : schedule.epochs) {
    for (double& v : epoch) {
      const double normalized = range > 0.0 ? (v - lo) / range : 0.0;
      v = beta_lo + (beta_hi - beta_lo) * normalized;
    }
  }
  return schedule;
}

core::MultiRegionGame with_betas(const core::MultiRegionGame& game,
                                 std::span<const double> betas) {
  AVCP_EXPECT(betas.size() == game.num_regions());
  core::GameConfig config = game.config();
  std::vector<core::RegionSpec> specs(game.regions().begin(),
                                      game.regions().end());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].beta = betas[i];
  }
  return core::MultiRegionGame(std::move(config), std::move(specs));
}

std::vector<EpochOutcome> run_time_varying(const core::MultiRegionGame& base,
                                           const BetaSchedule& schedule,
                                           const FieldFactory& field_factory,
                                           core::GameState initial,
                                           std::vector<double> x0,
                                           const TimeVaryingOptions& options) {
  AVCP_EXPECT(!schedule.epochs.empty());
  AVCP_EXPECT(options.reseed_mix >= 0.0 && options.reseed_mix < 1.0);
  for (const auto& epoch : schedule.epochs) {
    AVCP_EXPECT(epoch.size() == base.num_regions());
  }

  std::vector<EpochOutcome> outcomes;
  outcomes.reserve(schedule.num_epochs());
  core::GameState state = std::move(initial);
  std::vector<double> x = std::move(x0);
  const double uniform = 1.0 / static_cast<double>(base.num_decisions());

  for (std::size_t e = 0; e < schedule.num_epochs(); ++e) {
    const auto epoch_game = with_betas(base, schedule.epochs[e]);

    // Fresh vehicles restore a sliver of decision diversity at the switch.
    if (e > 0 && options.reseed_mix > 0.0) {
      for (auto& row : state.p) {
        for (double& v : row) {
          v = (1.0 - options.reseed_mix) * v + options.reseed_mix * uniform;
        }
      }
    }

    const core::DesiredFields fields = field_factory(epoch_game, state);
    core::FdsController controller(epoch_game, fields, options.fds);

    EpochOutcome outcome;
    outcome.rounds_to_converge = schedule.rounds_per_epoch;
    for (std::size_t t = 0; t < schedule.rounds_per_epoch; ++t) {
      x = controller.next_x(state, x);
      epoch_game.replicator_step(state, x);
      if (!outcome.converged &&
          fields.satisfied(state, options.satisfy_tol)) {
        outcome.converged = true;
        outcome.rounds_to_converge = t + 1;
      }
    }
    outcome.state_at_end = state;
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace avcp::sim
