#include "sim/agent_sim.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/serial.h"

namespace avcp::sim {

namespace {

// Stream tags for derive_seed: which consumer of the simulator's seed a
// stream belongs to. Distinct tags keep init and step draws uncorrelated.
constexpr std::uint64_t kInitStream = 0xA1;
constexpr std::uint64_t kStepStream = 0xA2;
constexpr std::uint64_t kMeasureStream = 0xA3;

}  // namespace

AgentBasedSim::AgentBasedSim(const core::MultiRegionGame& game,
                             AgentSimParams params,
                             const faults::FaultModel* faults,
                             const byzantine::AdversaryModel* adversary)
    : game_(game),
      params_(params),
      faults_(faults != nullptr && faults->active() ? faults : nullptr),
      adversary_(adversary != nullptr && adversary->active() ? adversary
                                                             : nullptr),
      pool_(ThreadPool::clamped_lanes(params.num_threads)) {
  AVCP_EXPECT(params_.vehicles_per_region >= 2);
  AVCP_EXPECT(params_.revision_rate >= 0.0 && params_.revision_rate <= 1.0);
  AVCP_EXPECT(params_.imitation_scale > 0.0);
  decisions_.assign(game.num_regions(),
                    std::vector<core::DecisionId>(params_.vehicles_per_region, 0));
  defector_.assign(game.num_regions(),
                   std::vector<bool>(params_.vehicles_per_region, false));
  if (faults_ != nullptr) {
    // Fault-layer defectors: a pure hash of (seed, region, vehicle), the
    // same schedule any other consumer of this model sees.
    for (core::RegionId i = 0; i < game.num_regions(); ++i) {
      for (std::size_t v = 0; v < defector_[i].size(); ++v) {
        defector_[i][v] = faults_->vehicle_defects(i, v);
      }
    }
  }
  if (params_.measured_fitness) {
    for (core::RegionId i = 0; i < game.num_regions(); ++i) {
      exchanges_.emplace_back(game, params_.exchange,
                              derive_seed(params_.seed, {kMeasureStream, i}));
    }
  }
  // Balance the per-region dispatch by measured cost (vehicles × classes),
  // not region count; fleet shapes are fixed, so plan once.
  std::vector<double> cost(game.num_regions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    cost[i] = static_cast<double>(decisions_[i].size()) *
              static_cast<double>(game.num_decisions());
  }
  chunk_plan_ = balanced_chunks(cost, 4 * pool_.size());
}

void AgentBasedSim::init_from(const core::GameState& state) {
  AVCP_EXPECT(state.p.size() == game_.num_regions());
  const std::size_t epoch = init_epoch_++;
  auto task = [&](std::size_t i) {
    core::check_distribution(state.p[i]);
    Rng rng(derive_seed(params_.seed, {kInitStream, epoch, i}));
    for (auto& decision : decisions_[i]) {
      decision = static_cast<core::DecisionId>(rng.weighted_index(state.p[i]));
    }
  };
  const ThreadPool::Stage stage{decisions_.size(), IndexFnRef(task), 0,
                                chunk_plan_};
  pool_.run_batch({&stage, 1});
}

void AgentBasedSim::step(std::span<const double> x) {
  AVCP_EXPECT(x.size() == game_.num_regions());
  const core::GameState snapshot = empirical_state();

  auto task = [&](std::size_t i) {
    // Edge-server outage: the region's fleet gets no fitness signal this
    // round, so every vehicle holds its decision — checked before the
    // fitness computation, which dominates the per-round cost and would be
    // wasted on a faulted region.
    if (faults_ != nullptr &&
        faults_->region_down(round_, static_cast<core::RegionId>(i))) {
      return;
    }
    // Per-region fitness of every decision against the snapshot: analytic
    // Eq. (4) by default, or one measured data-plane exchange over the
    // empirical mix (each round/region on its own derived stream).
    const std::vector<double> q =
        params_.measured_fitness
            ? exchanges_[i].per_decision_fitness(
                  snapshot.p[i], game_.region(static_cast<core::RegionId>(i)).beta,
                  x[i], derive_seed(params_.seed, {kMeasureStream, round_, i}))
            : game_.region_fitness(snapshot, x, static_cast<core::RegionId>(i));
    Rng rng(derive_seed(params_.seed, {kStepStream, round_, i}));
    auto& region = decisions_[i];
    const std::vector<core::DecisionId> before = region;  // revise vs snapshot
    for (std::size_t v = 0; v < region.size(); ++v) {
      if (defector_[i][v]) continue;
      // A vehicle attacking this round holds its decision strategically,
      // like a defector — but additionally lies in reported_state().
      // Designated vehicles outside their strategy's scope (colluders in
      // non-target regions, flip-floppers in honest half-cycles) revise
      // honestly.
      if (adversary_ != nullptr &&
          adversary_->attacking(round_, static_cast<core::RegionId>(i), v)) {
        continue;
      }
      if (!rng.bernoulli(params_.revision_rate)) continue;
      // Sample a distinct peer uniformly.
      auto peer = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(region.size()) - 2));
      if (peer >= v) ++peer;
      const core::DecisionId mine = before[v];
      const core::DecisionId theirs = before[peer];
      if (mine == theirs) continue;
      const double gain = q[theirs] - q[mine];
      if (gain <= 0.0) continue;
      const double p_imitate =
          std::min(1.0, params_.imitation_scale * gain);
      if (rng.bernoulli(p_imitate)) region[v] = theirs;
    }
  };
  const ThreadPool::Stage stage{decisions_.size(), IndexFnRef(task), 0,
                                chunk_plan_};
  pool_.run_batch({&stage, 1});
  ++round_;
}

void AgentBasedSim::save_state(Serializer& s) const {
  s.put_u64(game_.num_regions());
  s.put_u64(params_.vehicles_per_region);
  s.put_u64(params_.seed);
  s.put_bool(params_.measured_fitness);
  s.put_u64(round_);
  s.put_u64(init_epoch_);
  for (const std::vector<core::DecisionId>& region : decisions_) {
    put_u32_vec(s, region);
  }
  for (const MeasuredExchange& exchange : exchanges_) {
    exchange.save_state(s);
  }
}

void AgentBasedSim::load_state(Deserializer& d) {
  Deserializer::check(d.get_u64() == game_.num_regions(),
                      "AgentSim snapshot: region count mismatch");
  Deserializer::check(d.get_u64() == params_.vehicles_per_region,
                      "AgentSim snapshot: fleet size mismatch");
  Deserializer::check(d.get_u64() == params_.seed,
                      "AgentSim snapshot: seed mismatch");
  Deserializer::check(d.get_bool() == params_.measured_fitness,
                      "AgentSim snapshot: fitness mode mismatch");
  round_ = d.get_u64();
  init_epoch_ = d.get_u64();
  for (std::vector<core::DecisionId>& region : decisions_) {
    std::vector<core::DecisionId> row = get_u32_vec(d);
    Deserializer::check(row.size() == region.size(),
                        "AgentSim snapshot: decisions row size mismatch");
    for (const core::DecisionId decision : row) {
      Deserializer::check(decision < game_.num_decisions(),
                          "AgentSim snapshot: decision id out of range");
    }
    region = std::move(row);
  }
  for (MeasuredExchange& exchange : exchanges_) {
    exchange.load_state(d);
  }
}

core::GameState AgentBasedSim::empirical_state() const {
  core::GameState state;
  state.p.assign(game_.num_regions(),
                 std::vector<double>(game_.num_decisions(), 0.0));
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    for (const core::DecisionId d : decisions_[i]) {
      state.p[i][d] += 1.0;
    }
    for (double& v : state.p[i]) {
      v /= static_cast<double>(decisions_[i].size());
    }
  }
  return state;
}

core::GameState AgentBasedSim::reported_state() const {
  if (adversary_ == nullptr) return empirical_state();
  core::GameState state;
  state.p.assign(game_.num_regions(),
                 std::vector<double>(game_.num_decisions(), 0.0));
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    const auto region = static_cast<core::RegionId>(i);
    for (std::size_t v = 0; v < decisions_[i].size(); ++v) {
      byzantine::VehicleReport r;
      r.decision = decisions_[i][v];
      r = adversary_->falsify(round_, region, v, r);
      state.p[i][r.decision] += 1.0;
    }
    for (double& value : state.p[i]) {
      value /= static_cast<double>(decisions_[i].size());
    }
  }
  return state;
}

}  // namespace avcp::sim
