#include "sim/agent_sim.h"

#include <algorithm>

#include "common/contracts.h"

namespace avcp::sim {

AgentBasedSim::AgentBasedSim(const core::MultiRegionGame& game,
                             AgentSimParams params,
                             const faults::FaultModel* faults,
                             const byzantine::AdversaryModel* adversary)
    : game_(game),
      params_(params),
      faults_(faults != nullptr && faults->active() ? faults : nullptr),
      adversary_(adversary != nullptr && adversary->active() ? adversary
                                                             : nullptr),
      rng_(params.seed) {
  AVCP_EXPECT(params_.vehicles_per_region >= 2);
  AVCP_EXPECT(params_.revision_rate >= 0.0 && params_.revision_rate <= 1.0);
  AVCP_EXPECT(params_.imitation_scale > 0.0);
  decisions_.assign(game.num_regions(),
                    std::vector<core::DecisionId>(params_.vehicles_per_region, 0));
  defector_.assign(game.num_regions(),
                   std::vector<bool>(params_.vehicles_per_region, false));
  if (faults_ != nullptr) {
    // Fault-layer defectors: a pure hash of (seed, region, vehicle), the
    // same schedule any other consumer of this model sees.
    for (core::RegionId i = 0; i < game.num_regions(); ++i) {
      for (std::size_t v = 0; v < defector_[i].size(); ++v) {
        defector_[i][v] = faults_->vehicle_defects(i, v);
      }
    }
  }
}

void AgentBasedSim::init_from(const core::GameState& state) {
  AVCP_EXPECT(state.p.size() == game_.num_regions());
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    core::check_distribution(state.p[i]);
    for (auto& decision : decisions_[i]) {
      decision = static_cast<core::DecisionId>(rng_.weighted_index(state.p[i]));
    }
  }
}

void AgentBasedSim::step(std::span<const double> x) {
  AVCP_EXPECT(x.size() == game_.num_regions());
  const core::GameState snapshot = empirical_state();

  // Per-region fitness of every decision against the snapshot.
  std::vector<std::vector<double>> q(game_.num_regions());
  for (core::RegionId i = 0; i < game_.num_regions(); ++i) {
    q[i] = game_.region_fitness(snapshot, x, i);
  }

  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    auto& region = decisions_[i];
    // Edge-server outage: the region's fleet gets no fitness signal this
    // round, so every vehicle holds its decision.
    if (faults_ != nullptr &&
        faults_->region_down(round_, static_cast<core::RegionId>(i))) {
      continue;
    }
    const std::vector<core::DecisionId> before = region;  // revise vs snapshot
    for (std::size_t v = 0; v < region.size(); ++v) {
      if (defector_[i][v]) continue;
      // A vehicle attacking this round holds its decision strategically,
      // like a defector — but additionally lies in reported_state().
      // Designated vehicles outside their strategy's scope (colluders in
      // non-target regions, flip-floppers in honest half-cycles) revise
      // honestly.
      if (adversary_ != nullptr &&
          adversary_->attacking(round_, static_cast<core::RegionId>(i), v)) {
        continue;
      }
      if (!rng_.bernoulli(params_.revision_rate)) continue;
      // Sample a distinct peer uniformly.
      auto peer = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(region.size()) - 2));
      if (peer >= v) ++peer;
      const core::DecisionId mine = before[v];
      const core::DecisionId theirs = before[peer];
      if (mine == theirs) continue;
      const double gain = q[i][theirs] - q[i][mine];
      if (gain <= 0.0) continue;
      const double p_imitate =
          std::min(1.0, params_.imitation_scale * gain);
      if (rng_.bernoulli(p_imitate)) region[v] = theirs;
    }
  }
  ++round_;
}

core::GameState AgentBasedSim::empirical_state() const {
  core::GameState state;
  state.p.assign(game_.num_regions(),
                 std::vector<double>(game_.num_decisions(), 0.0));
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    for (const core::DecisionId d : decisions_[i]) {
      state.p[i][d] += 1.0;
    }
    for (double& v : state.p[i]) {
      v /= static_cast<double>(decisions_[i].size());
    }
  }
  return state;
}

core::GameState AgentBasedSim::reported_state() const {
  if (adversary_ == nullptr) return empirical_state();
  core::GameState state;
  state.p.assign(game_.num_regions(),
                 std::vector<double>(game_.num_decisions(), 0.0));
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    const auto region = static_cast<core::RegionId>(i);
    for (std::size_t v = 0; v < decisions_[i].size(); ++v) {
      byzantine::VehicleReport r;
      r.decision = decisions_[i][v];
      r = adversary_->falsify(round_, region, v, r);
      state.p[i][r.decision] += 1.0;
    }
    for (double& value : state.p[i]) {
      value /= static_cast<double>(decisions_[i].size());
    }
  }
  return state;
}

}  // namespace avcp::sim
