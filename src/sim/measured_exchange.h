// Measured per-decision fitness from a synthetic data-plane exchange.
//
// The agent and trace simulators score decisions with the analytic Eq. (4)
// fitness. This helper offers the measured alternative: synthesize a small
// edge-server fleet whose decision mix follows the region's empirical
// distribution, run one real EdgeServerDataPlane round (either kernel), and
// average the realized fitness per decision class — the same
// beta * utility - exposed_fraction signal the system plant computes, so
// revision dynamics can be driven by what the data plane actually delivers
// instead of the mean-field prediction.
//
// Determinism: fleet synthesis draws from a caller-provided pure-hash
// stream seed (derive_seed of (round, region)), and each MeasuredExchange
// instance owns its plane and scratch buffers, so one instance per region
// keeps multi-threaded simulators bit-identical at every thread count (the
// same ownership argument as CooperativePerceptionSystem's planes_).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/game.h"
#include "perception/data_plane.h"

namespace avcp::sim {

struct MeasuredExchangeParams {
  /// Synthetic fleet size per evaluation; the first K vehicles are probes,
  /// one per decision class, so every class's fitness is always measured.
  /// Must be >= the lattice's K.
  std::size_t fleet_size = 48;
  std::size_t items_per_sensor = 24;
  double collect_fraction = 0.5;
  double desire_fraction = 0.3;
  /// Which data-plane kernel runs the exchange.
  perception::DataPlaneMode mode = perception::DataPlaneMode::kPairwiseExact;
};

/// One region's measured-fitness evaluator. Not copyable or movable (the
/// plane holds a reference to the owned universe); simulators keep one per
/// region in a std::deque.
class MeasuredExchange {
 public:
  /// `game` must outlive the evaluator; its lattice, access rule, and
  /// per-decision privacy weights shape the synthetic universe.
  MeasuredExchange(const core::MultiRegionGame& game,
                   MeasuredExchangeParams params, std::uint64_t seed);

  MeasuredExchange(const MeasuredExchange&) = delete;
  MeasuredExchange& operator=(const MeasuredExchange&) = delete;

  /// Realized fitness per decision class: a fleet is drawn from `p` (plus
  /// one probe per class), one round is run at sharing ratio `x`, and each
  /// class's beta * utility - exposed_fraction is averaged. `stream` must
  /// be a derive_seed product unique per (round, region) so the synthesis
  /// is independent of call interleaving. The returned reference is
  /// invalidated by the next call.
  const std::vector<double>& per_decision_fitness(std::span<const double> p,
                                                  double beta, double x,
                                                  std::uint64_t stream);

  /// Checkpoint hooks: the evaluator's only cross-call state is its
  /// plane's RNG position (the universe is reconstructed from the seed).
  void save_state(Serializer& s) const { plane_.save_state(s); }
  void load_state(Deserializer& d) { plane_.load_state(d); }

 private:
  const core::MultiRegionGame& game_;
  MeasuredExchangeParams params_;
  perception::DataUniverse universe_;
  perception::EdgeServerDataPlane plane_;
  // Reused across calls (zero steady-state allocations, like the plane).
  // The synthetic fleet lives in SoA layout (one flat item arena instead of
  // two heap ItemSets per vehicle); desired items are buffered per vehicle
  // in `desired_scratch_` because synthesis interleaves collect/desire
  // draws per item while the arena builder streams one set at a time.
  perception::FleetSoA fleet_;
  perception::ItemSet desired_scratch_;
  perception::RoundOutcome outcome_;
  std::vector<double> fitness_;
  std::vector<double> counts_;
};

}  // namespace avcp::sim
