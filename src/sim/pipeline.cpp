#include "sim/pipeline.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/stats.h"
#include "roadnet/betweenness.h"

namespace avcp::sim {

std::vector<core::RegionSpec> make_region_specs(
    const cluster::Clustering& clustering,
    const cluster::RegionGraph& region_graph,
    std::span<const double> coefficients, double beta_lo, double beta_hi) {
  AVCP_EXPECT(beta_hi >= beta_lo);
  AVCP_EXPECT(beta_lo >= 0.0);
  AVCP_EXPECT(clustering.num_regions() == region_graph.num_regions());

  const auto means = clustering.region_means(coefficients);
  const auto normalized = minmax_normalize(means);

  std::vector<core::RegionSpec> specs(clustering.num_regions());
  for (cluster::RegionId i = 0; i < specs.size(); ++i) {
    specs[i].beta = beta_lo + (beta_hi - beta_lo) * normalized[i];
    specs[i].gamma_self = region_graph.gamma(i, i);
    for (const cluster::RegionId j : region_graph.neighbors(i)) {
      specs[i].neighbors.emplace_back(j, region_graph.gamma(j, i));
    }
  }
  return specs;
}

PipelineArtifacts build_pipeline(const PipelineConfig& config) {
  AVCP_EXPECT(config.num_servers >= 1);
  AVCP_EXPECT(config.num_regions >= 1);

  PipelineArtifacts artifacts;
  artifacts.graph = roadnet::build_city(config.city);
  const auto& graph = artifacts.graph;

  // Traces (shared by TD coefficients and gamma estimation) are streamed
  // from the generator through the accumulators; fixes are only
  // materialized when the caller wants them (config.keep_fixes).
  const trace::TraceGenerator generator(graph, config.traces);

  // Per-segment utility coefficient.
  if (config.coefficient == CoefficientKind::kBetweenness) {
    artifacts.coefficients = roadnet::segment_betweenness(graph);
    if (config.keep_fixes) {
      generator.generate(
          [&](const trace::GpsFix& fix) { artifacts.fixes.push_back(fix); });
    }
  } else {
    trace::TrafficDensityAccumulator td(graph.num_segments(),
                                        config.td_window_s,
                                        config.traces.duration_s);
    generator.generate([&](const trace::GpsFix& fix) {
      td.add(fix);
      if (config.keep_fixes) artifacts.fixes.push_back(fix);
    });
    artifacts.coefficients = td.average_density();
  }

  // Edge servers + Voronoi cells.
  std::vector<PointM> nodes;
  nodes.reserve(graph.num_intersections());
  for (std::size_t v = 0; v < graph.num_intersections(); ++v) {
    nodes.push_back(graph.intersection(static_cast<roadnet::NodeId>(v)));
  }
  const spatial::BBoxM area = spatial::BBoxM::around(nodes);
  artifacts.server_positions = spatial::deploy_grid(area, config.num_servers);
  const spatial::VoronoiPartition voronoi(artifacts.server_positions);
  artifacts.cell_of_segment = voronoi.assign_segments(graph);

  // Algorithm-1 clustering on the chosen coefficient.
  artifacts.clustering = cluster::cluster_segments(
      graph, artifacts.coefficients,
      cluster::ClusteringOptions{config.num_regions});

  // Region graph with gamma frequencies from vehicle co-presence.
  cluster::RegionGraphInputs inputs;
  inputs.region_of_segment = artifacts.clustering.region_of;
  inputs.cell_of_segment = artifacts.cell_of_segment;
  inputs.num_regions = config.num_regions;
  inputs.num_cells = config.num_servers;
  inputs.window_s = config.traces.fix_interval_s;
  inputs.duration_s = config.traces.duration_s;
  cluster::RegionGraphAccumulator gamma_accumulator(inputs);
  if (config.keep_fixes) {
    for (const trace::GpsFix& fix : artifacts.fixes) gamma_accumulator.add(fix);
  } else {
    // Second deterministic generator pass: the graph needs the clustering
    // (computed above), and without kept fixes regenerating is the
    // constant-memory way to feed it.
    generator.generate(
        [&](const trace::GpsFix& fix) { gamma_accumulator.add(fix); });
  }
  artifacts.region_graph = gamma_accumulator.build();
  artifacts.region_graph.rescale_max(config.gamma_max);

  artifacts.region_specs =
      make_region_specs(artifacts.clustering, artifacts.region_graph,
                        artifacts.coefficients, config.beta_lo, config.beta_hi);
  return artifacts;
}

}  // namespace avcp::sim
