#include "sim/measured_exchange.h"

#include <algorithm>

#include "common/contracts.h"

namespace avcp::sim {

namespace {

// Sub-stream tags under the evaluator's base seed.
constexpr std::uint64_t kUniverseStream = 0xC1;
constexpr std::uint64_t kPlaneStream = 0xC2;

perception::DataUniverse make_exchange_universe(
    const core::MultiRegionGame& game, const MeasuredExchangeParams& params,
    std::uint64_t seed) {
  // Sensor privacy weights proportional to the per-decision privacy of the
  // singleton decisions — the same recovery the system plant performs.
  const auto& lattice = game.lattice();
  std::vector<double> sensor_privacy(lattice.num_sensors(), 0.0);
  for (std::size_t s = 0; s < lattice.num_sensors(); ++s) {
    const core::DecisionId singleton =
        lattice.decision_of(lattice.sensor_bit(s));
    sensor_privacy[s] = std::max(1e-3, game.config().privacy[singleton]);
  }
  Rng rng(derive_seed(seed, {kUniverseStream}));
  return perception::DataUniverse::synthetic(
      lattice.num_sensors(), params.items_per_sensor, sensor_privacy, rng);
}

}  // namespace

MeasuredExchange::MeasuredExchange(const core::MultiRegionGame& game,
                                   MeasuredExchangeParams params,
                                   std::uint64_t seed)
    : game_(game),
      params_(params),
      universe_(make_exchange_universe(game, params, seed)),
      plane_(game.lattice(), universe_, game.config().access,
             derive_seed(seed, {kPlaneStream})) {
  AVCP_EXPECT(params_.fleet_size >= game.num_decisions());
  AVCP_EXPECT(params_.items_per_sensor >= 1);
  AVCP_EXPECT(params_.collect_fraction > 0.0 && params_.collect_fraction <= 1.0);
  AVCP_EXPECT(params_.desire_fraction > 0.0 && params_.desire_fraction <= 1.0);
  fleet_.reserve(params_.fleet_size,
                 2 * params_.fleet_size * universe_.size());
  fitness_.resize(game.num_decisions());
  counts_.resize(game.num_decisions());
}

const std::vector<double>& MeasuredExchange::per_decision_fitness(
    std::span<const double> p, double beta, double x, std::uint64_t stream) {
  const std::size_t k = game_.num_decisions();
  AVCP_EXPECT(p.size() == k);
  Rng rng(stream);

  fleet_.clear();
  for (std::size_t v = 0; v < params_.fleet_size; ++v) {
    // Probes (one per class) guarantee every class is measured; the rest of
    // the fleet follows the region's empirical mix, shaping the pool.
    // Synthesis interleaves the collect/desire Bernoullis per item (the
    // draw-order contract of the original AoS loop); collected streams
    // straight into the arena while desired buffers through the scratch.
    fleet_.add(v < k ? static_cast<core::DecisionId>(v)
                     : static_cast<core::DecisionId>(rng.weighted_index(p)));
    desired_scratch_.clear();
    fleet_.begin_collected(v);
    for (perception::ItemId id = 0; id < universe_.size(); ++id) {
      if (rng.bernoulli(params_.collect_fraction)) fleet_.push_item(id);
      if (rng.bernoulli(params_.desire_fraction)) desired_scratch_.push_back(id);
    }
    fleet_.end_set();
    if (desired_scratch_.empty()) desired_scratch_.push_back(0);
    std::span<perception::ItemId> d = fleet_.alloc_desired(
        v, static_cast<std::uint32_t>(desired_scratch_.size()));
    std::copy(desired_scratch_.begin(), desired_scratch_.end(), d.begin());
  }

  plane_.run_round_into(fleet_.view(), x, {}, {}, params_.mode, outcome_);

  std::fill(fitness_.begin(), fitness_.end(), 0.0);
  std::fill(counts_.begin(), counts_.end(), 0.0);
  for (std::size_t v = 0; v < params_.fleet_size; ++v) {
    const double own_mass = universe_.privacy_weight(fleet_.collected_of(v));
    const double exposed_fraction =
        own_mass > 0.0
            ? outcome_.privacy[v] * universe_.total_privacy_weight() / own_mass
            : 0.0;
    fitness_[fleet_.decision(v)] += beta * outcome_.utility[v] - exposed_fraction;
    counts_[fleet_.decision(v)] += 1.0;
  }
  for (std::size_t d = 0; d < k; ++d) {
    if (counts_[d] > 0.0) fitness_[d] /= counts_[d];
  }
  return fitness_;
}

}  // namespace avcp::sim
