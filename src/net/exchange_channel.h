// Reliable-enough delivery over a LinkModel: retries, backoff, dedup, and
// bounded-staleness consumption for the inter-region exchange.
//
// The channel carries transport *metadata only*. Payload storage stays
// with the engine (a small ring of per-sender snapshots, NetParams::
// ring_slots() deep): a message is the pair (link, payload_round), and a
// delivery tells the receiver which ring slot to consume. This keeps the
// channel engine-agnostic — System ships fleet scenes, ServiceEngine ships
// report rows, ShardedFleetEngine ships sender samples — and keeps the
// checkpoint section tiny.
//
// Protocol per round (all on the control thread, between the parallel
// stages, so delivery order can never depend on lane count):
//   1. publish(link, round) for every link whose sender has a fresh
//      payload this round;
//   2. resolve_round(round): each new publish and each due in-flight entry
//      gets its LinkModel fate. Deliveries land as newest-wins updates of
//      the link's applied payload (duplicates and late stale copies dedup
//      away); drops schedule a bounded retransmission with exponential
//      backoff (backoff_base * 2^attempt rounds); partitions sever the
//      link for the round, costing the message an attempt.
//   3. consumable(link, round): the payload round the receiver should
//      consume — the newest applied payload while its age is within
//      max_staleness, else kNothing (the link is blind and the receiver
//      falls back to local-only revision, the DegradedController pattern
//      at the transport layer).
//   4. consume_order(dst): the receiver's links in canonical (add_link)
//      order, except that reorder-fated arrivals swap with their
//      predecessor — receivers that fold arrivals in consume order see
//      reordering as a real, deterministic effect.
//
// With an inert LinkModel (params().any() == false) every publish delivers
// in its own round, consumable() == round on every published link, and
// consume_order is canonical: the transport path is bit-identical to the
// synchronous exchange it replaced (locked in tests/partition_test.cpp).
//
// save_state/load_state capture the in-flight queue, per-link freshness,
// and counters behind a NetParams + topology fingerprint, so a checkpoint
// taken mid-partition (retransmissions pending, delayed copies in flight)
// resumes byte-equal and rejects a differently-configured network.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/link_model.h"

namespace avcp::net {

class ExchangeChannel {
 public:
  /// No payload applied / no payload consumable sentinel.
  static constexpr std::uint64_t kNothing = ~std::uint64_t{0};

  /// `model` must outlive the channel. `num_nodes` bounds link endpoints.
  ExchangeChannel(const LinkModel& model, std::uint32_t num_nodes);

  /// Registers the directed link src -> dst; returns its id. Links must be
  /// added before the first publish; per-destination canonical consume
  /// order is add order.
  std::uint32_t add_link(std::uint32_t src, std::uint32_t dst);

  std::size_t num_links() const noexcept { return links_.size(); }
  std::uint32_t link_src(std::uint32_t link) const {
    return links_[link].src;
  }
  std::uint32_t link_dst(std::uint32_t link) const {
    return links_[link].dst;
  }

  /// The sender of `link` offers its round-`round` payload. Call once per
  /// link per round (skip links whose sender produced nothing), then
  /// resolve_round(round) exactly once.
  void publish(std::uint32_t link, std::size_t round);

  /// Resolves every new publish and every due in-flight message for
  /// `round`. Rounds must be resolved in increasing order.
  void resolve_round(std::size_t round);

  /// Payload round the receiver should consume on `link` at `round`, or
  /// kNothing when the link is blind (nothing ever applied, or the newest
  /// applied payload is older than max_staleness).
  std::uint64_t consumable(std::uint32_t link, std::size_t round) const;

  /// A delivery applied on `link` in the last resolved round.
  bool delivered_this_round(std::uint32_t link) const {
    return delivered_[link] != 0;
  }
  /// Newest payload round ever applied on `link` (kNothing before any).
  std::uint64_t applied_round(std::uint32_t link) const {
    return links_[link].applied;
  }

  /// The receiver's links in this round's consume order (canonical add
  /// order with reorder swaps applied by the last resolve_round).
  std::span<const std::uint32_t> consume_order(std::uint32_t dst) const {
    return order_[dst];
  }

  /// Cumulative transport telemetry.
  struct Counters {
    std::uint64_t sent = 0;        // transmission attempts (retries included)
    std::uint64_t delivered = 0;   // arrivals that applied (newest-wins)
    std::uint64_t deduped = 0;     // arrivals superseded by a newer payload
    std::uint64_t dropped = 0;     // attempts lost (severed included)
    std::uint64_t severed = 0;     // attempts lost to a partition
    std::uint64_t delayed = 0;     // attempts fated to arrive late
    std::uint64_t duplicates = 0;  // extra copies spawned
    std::uint64_t retries = 0;     // retransmission attempts
    std::uint64_t expired = 0;     // messages abandoned after max_retries

    friend bool operator==(const Counters&, const Counters&) = default;
    void save_state(Serializer& s) const;
    void load_state(Deserializer& d);
  };
  const Counters& counters() const noexcept { return counters_; }

  /// Pending messages (scheduled deliveries + scheduled retransmissions).
  std::size_t in_flight() const noexcept { return inflight_.size(); }

  /// Drops all in-flight state and freshness; topology is kept.
  void reset();

  /// Checkpoint hooks: NetParams + topology fingerprint, then per-link
  /// freshness, the in-flight queue, and the counters.
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);

 private:
  struct Link {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t applied = kNothing;  // newest applied payload round
  };
  /// One scheduled event: either a fate-resolved delivery due at `due`, or
  /// a retransmission to be (re-)fated when its backoff expires.
  struct InFlight {
    std::uint64_t due = 0;
    std::uint64_t payload = 0;
    std::uint32_t link = 0;
    std::uint32_t attempt = 0;
    std::uint8_t kind = 0;  // 0 = delivery, 1 = retransmission
    std::uint8_t reorder = 0;
  };

  void attempt_send(std::size_t round, std::uint32_t link,
                    std::uint64_t payload, std::uint32_t attempt);
  void arrive(std::uint32_t link, std::uint64_t payload, bool reorder);

  const LinkModel& model_;
  std::uint32_t num_nodes_;
  std::vector<Link> links_;
  /// order_[dst]: dst's links in the current consume order (reset to
  /// canonical_[dst] at each resolve).
  std::vector<std::vector<std::uint32_t>> canonical_;
  std::vector<std::vector<std::uint32_t>> order_;
  std::vector<std::uint32_t> pending_;       // this round's publishes
  std::vector<InFlight> inflight_;           // insertion-ordered
  std::vector<std::uint8_t> delivered_;      // per-link, last resolve
  std::vector<InFlight> carry_;              // resolve scratch
  Counters counters_;
  std::uint64_t resolved_round_ = kNothing;  // last resolved round
};

}  // namespace avcp::net
