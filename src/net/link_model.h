// Deterministic degraded-network model for inter-region exchange.
//
// The paper's framework assumes step S2's cross-region data exchange is a
// perfect, loss-free, synchronous call — the one distributed-systems
// failure surface the repo had never modeled. Real V2X/edge backhaul
// drops, delays, reorders, and duplicates messages, and sometimes
// partitions the region graph outright. LinkModel is the single source of
// truth for *what* the network does to *which* message: every predicate is
// a pure hash of (seed, stream, round, link, payload, attempt) — no
// mutable RNG state — so a network schedule is reproducible from one seed
// regardless of query order, thread count, or how many components consult
// it (the same contract as faults::FaultModel, which owns vehicle- and
// region-level faults; LinkModel owns the links *between* regions).
//
// The model answers two independent questions:
//   - fate(round, src, dst, payload, attempt): what happens to one message
//     sent on link src->dst this round — delivered now, delayed k rounds,
//     or dropped — plus whether an extra duplicate copy rides along and
//     whether the arrival is reordered against the receiver's other links.
//   - severed(round, a, b): whether a PartitionWindow places a and b in
//     different components this round (a severed link drops everything;
//     healing is the window simply ending).
//
// Transport policy (retries, backoff, staleness) lives in ExchangeChannel;
// this class is pure fate assignment.
#pragma once

#include <cstdint>
#include <vector>

#include "core/game.h"

namespace avcp {
class Serializer;
class Deserializer;
}  // namespace avcp

namespace avcp::net {

/// A scheduled network partition: for rounds [first_round, first_round +
/// duration) the node graph is split into `num_components` components and
/// every link crossing a component boundary is severed. Healing is the
/// window ending — there is no explicit merge step.
struct PartitionWindow {
  std::size_t first_round = 0;
  std::size_t duration = 0;
  /// Components the node set is hashed into (>= 1; 1 is a no-op window).
  /// Ignored when `component` below is non-empty.
  std::uint32_t num_components = 2;
  /// Salt for the hashed assignment, so two windows with the same shape
  /// can cut the graph differently.
  std::uint64_t salt = 0;
  /// Explicit per-node component ids (size == node count). Empty = assign
  /// each node by pure hash of (salt, node).
  std::vector<std::uint32_t> component;

  bool covers(std::size_t round) const noexcept {
    return round >= first_round && round - first_round < duration;
  }
  /// Component of node `n` under this window (hashed unless explicit).
  std::uint32_t component_of(std::uint32_t n) const noexcept;
};

struct NetParams {
  /// Per-(message, attempt) probability the message is dropped in flight.
  double drop_rate = 0.0;
  /// Probability a non-dropped message is delayed 1..max_delay_rounds
  /// rounds instead of arriving in its send round.
  double delay_rate = 0.0;
  /// Upper bound on a single delivery delay, in rounds.
  std::size_t max_delay_rounds = 2;
  /// Probability a non-dropped message spawns one extra delayed copy
  /// (dedup in the channel makes the duplicate idempotent).
  double duplicate_rate = 0.0;
  /// Probability a delivery is reordered against the receiver's other
  /// arrivals this round (the consume order swaps with the previous link).
  double reorder_rate = 0.0;
  /// Scheduled partitions of the node graph.
  std::vector<PartitionWindow> partitions;

  // --- Transport policy (consumed by ExchangeChannel). --------------------
  /// Retransmissions attempted after a drop before the sender gives up.
  std::size_t max_retries = 2;
  /// Rounds before the first retransmission; doubles per further attempt
  /// (exponential backoff: attempt a resends backoff_base * 2^(a-1) rounds
  /// after attempt a-1 was sent).
  std::size_t backoff_base = 1;
  /// A held payload stays consumable while its age (current round minus
  /// the round the payload was produced) is <= max_staleness; beyond that
  /// the link is blind and the receiver falls back to local-only revision.
  std::size_t max_staleness = 3;

  /// Route the exchange through the channel even when no degradation can
  /// ever fire. The transport path with an inert model is bit-identical to
  /// the synchronous exchange — this flag exists so that contract can be
  /// locked in a test (and measured in benches) without enabling faults.
  bool model_transport = false;
  std::uint64_t seed = 0;

  /// True if any link degradation can ever fire. any() == false leaves the
  /// synchronous exchange untouched unless model_transport forces the
  /// (bit-identical) channel path.
  bool any() const noexcept;
  /// The exchange routes through ExchangeChannel at all.
  bool active() const noexcept { return any() || model_transport; }
  /// Construction-time range checks; throws ContractViolation.
  void validate() const;
  /// Payload-ring slots an engine must retain per sender: a payload older
  /// than max_staleness is never consumable, so staleness + 1 slots cover
  /// every reachable consumption.
  std::size_t ring_slots() const noexcept { return max_staleness + 1; }
};

/// What the network does to one (link, round, attempt) message.
struct MessageFate {
  enum class Kind : std::uint8_t {
    kDeliver = 0,  // arrives in its send round
    kDelay = 1,    // arrives delay_rounds later
    kDrop = 2,     // lost (the channel may schedule a retransmission)
  };
  Kind kind = Kind::kDeliver;
  std::size_t delay_rounds = 0;  // > 0 iff kDelay
  /// One extra copy arrives duplicate_delay rounds late (never with kDrop).
  bool duplicate = false;
  std::size_t duplicate_delay = 0;
  /// The arrival swaps with the receiver's previous link in consume order.
  bool reorder = false;
};

class LinkModel {
 public:
  /// Validates `params` (construction-time range checks).
  explicit LinkModel(NetParams params);

  const NetParams& params() const noexcept { return params_; }
  /// Any degradation can ever fire (partitions included).
  bool degrading() const noexcept { return degrading_; }

  /// Component of node `n` in `round` (0 when no window covers the round;
  /// overlapping windows compose — nodes split by ANY covering window are
  /// severed, and component() reports the first covering window's id).
  std::uint32_t component(std::size_t round, std::uint32_t n) const noexcept;

  /// Nodes a and b are in different components of some covering window.
  bool severed(std::size_t round, std::uint32_t a,
               std::uint32_t b) const noexcept;

  /// Fate of the message sent on link src->dst in `round`, carrying the
  /// payload produced in `payload_round`, as transmission attempt
  /// `attempt` (0 = first send). Partition checks are separate (severed()).
  MessageFate fate(std::size_t round, std::uint32_t src, std::uint32_t dst,
                   std::size_t payload_round,
                   std::size_t attempt) const noexcept;

 private:
  double hash_uniform(std::uint64_t stream, std::uint64_t a, std::uint64_t b,
                      std::uint64_t c, std::uint64_t d) const noexcept;

  NetParams params_;
  bool degrading_;
};

/// Serialization of the fate-relevant configuration, used by
/// ExchangeChannel's checkpoint fingerprint: a snapshot taken under one
/// network schedule must not restore into a run with a different one.
void put_net_params(Serializer& s, const NetParams& p);
/// Throws SerialError when the serialized params disagree with `live`.
void check_net_params(Deserializer& d, const NetParams& live);

}  // namespace avcp::net
