#include "net/exchange_channel.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/serial.h"

namespace avcp::net {

ExchangeChannel::ExchangeChannel(const LinkModel& model,
                                 std::uint32_t num_nodes)
    : model_(model), num_nodes_(num_nodes) {
  AVCP_EXPECT(num_nodes >= 1);
  canonical_.resize(num_nodes);
  order_.resize(num_nodes);
}

std::uint32_t ExchangeChannel::add_link(std::uint32_t src,
                                        std::uint32_t dst) {
  AVCP_EXPECT(src < num_nodes_ && dst < num_nodes_);
  const auto id = static_cast<std::uint32_t>(links_.size());
  links_.push_back(Link{src, dst, kNothing});
  canonical_[dst].push_back(id);
  delivered_.push_back(0);
  return id;
}

void ExchangeChannel::publish(std::uint32_t link, std::size_t round) {
  AVCP_EXPECT(link < links_.size());
  AVCP_EXPECT(resolved_round_ == kNothing || round > resolved_round_);
  pending_.push_back(link);
}

void ExchangeChannel::resolve_round(std::size_t round) {
  AVCP_EXPECT(resolved_round_ == kNothing || round > resolved_round_);
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    order_[n].assign(canonical_[n].begin(), canonical_[n].end());
  }
  std::fill(delivered_.begin(), delivered_.end(), std::uint8_t{0});

  // Swap the queue out so attempt_send can append next-round events while
  // this round's entries are walked. Fresh publishes are fated first, then
  // due in-flight entries in insertion order — a fixed serial order, so
  // delivery can never depend on lane count.
  carry_.swap(inflight_);
  inflight_.clear();
  for (const std::uint32_t link : pending_) {
    attempt_send(round, link, round, 0);
  }
  pending_.clear();
  for (const InFlight& e : carry_) {
    if (e.due != round) {
      inflight_.push_back(e);
    } else if (e.kind == 0) {
      arrive(e.link, e.payload, e.reorder != 0);
    } else {
      attempt_send(round, e.link, e.payload, e.attempt);
    }
  }
  carry_.clear();
  resolved_round_ = round;
}

void ExchangeChannel::attempt_send(std::size_t round, std::uint32_t link,
                                   std::uint64_t payload,
                                   std::uint32_t attempt) {
  ++counters_.sent;
  if (attempt > 0) ++counters_.retries;
  const Link& l = links_[link];
  const bool cut = model_.severed(round, l.src, l.dst);
  MessageFate fate;
  if (cut) {
    fate.kind = MessageFate::Kind::kDrop;
    ++counters_.severed;
  } else {
    fate = model_.fate(round, l.src, l.dst, payload, attempt);
  }
  if (fate.kind == MessageFate::Kind::kDrop) {
    ++counters_.dropped;
    if (attempt < model_.params().max_retries) {
      // Exponential backoff in rounds: retry a+1 goes out base * 2^a
      // rounds after attempt a failed.
      const std::uint64_t wait = model_.params().backoff_base
                                 << attempt;
      inflight_.push_back(
          InFlight{round + wait, payload, link, attempt + 1, 1, 0});
    } else {
      ++counters_.expired;
    }
    return;  // a dropped message neither duplicates nor reorders
  }
  if (fate.kind == MessageFate::Kind::kDelay) {
    ++counters_.delayed;
    inflight_.push_back(InFlight{round + fate.delay_rounds, payload, link,
                                 attempt, 0,
                                 static_cast<std::uint8_t>(fate.reorder)});
  } else {
    arrive(link, payload, fate.reorder);
  }
  if (fate.duplicate) {
    ++counters_.duplicates;
    inflight_.push_back(
        InFlight{round + fate.duplicate_delay, payload, link, attempt, 0, 0});
  }
}

void ExchangeChannel::arrive(std::uint32_t link, std::uint64_t payload,
                             bool reorder) {
  Link& l = links_[link];
  // Newest-wins dedup: message id is (link, payload round), so a duplicate
  // or a late copy superseded by fresher data applies exactly zero times.
  if (l.applied == kNothing || payload > l.applied) {
    l.applied = payload;
    delivered_[link] = 1;
    ++counters_.delivered;
  } else {
    ++counters_.deduped;
  }
  if (reorder) {
    std::vector<std::uint32_t>& ord = order_[l.dst];
    for (std::size_t i = 1; i < ord.size(); ++i) {
      if (ord[i] == link) {
        std::swap(ord[i], ord[i - 1]);
        break;
      }
    }
  }
}

std::uint64_t ExchangeChannel::consumable(std::uint32_t link,
                                          std::size_t round) const {
  AVCP_EXPECT(link < links_.size());
  const std::uint64_t p = links_[link].applied;
  if (p == kNothing) return kNothing;
  if (round - p > model_.params().max_staleness) return kNothing;
  return p;
}

void ExchangeChannel::reset() {
  for (Link& l : links_) l.applied = kNothing;
  std::fill(delivered_.begin(), delivered_.end(), std::uint8_t{0});
  for (std::uint32_t n = 0; n < num_nodes_; ++n) order_[n].clear();
  pending_.clear();
  inflight_.clear();
  counters_ = Counters{};
  resolved_round_ = kNothing;
}

void ExchangeChannel::Counters::save_state(Serializer& s) const {
  s.put_u64(sent);
  s.put_u64(delivered);
  s.put_u64(deduped);
  s.put_u64(dropped);
  s.put_u64(severed);
  s.put_u64(delayed);
  s.put_u64(duplicates);
  s.put_u64(retries);
  s.put_u64(expired);
}

void ExchangeChannel::Counters::load_state(Deserializer& d) {
  sent = d.get_u64();
  delivered = d.get_u64();
  deduped = d.get_u64();
  dropped = d.get_u64();
  severed = d.get_u64();
  delayed = d.get_u64();
  duplicates = d.get_u64();
  retries = d.get_u64();
  expired = d.get_u64();
}

void ExchangeChannel::save_state(Serializer& s) const {
  // Configuration fingerprint: network schedule + topology. A snapshot
  // taken under one degradation schedule must not restore into another.
  put_net_params(s, model_.params());
  s.put_u32(num_nodes_);
  s.put_u64(links_.size());
  for (const Link& l : links_) {
    s.put_u32(l.src);
    s.put_u32(l.dst);
  }

  s.put_u64(resolved_round_);
  for (const Link& l : links_) s.put_u64(l.applied);
  s.put_u64(inflight_.size());
  for (const InFlight& e : inflight_) {
    s.put_u64(e.due);
    s.put_u64(e.payload);
    s.put_u32(e.link);
    s.put_u32(e.attempt);
    s.put_u8(e.kind);
    s.put_u8(e.reorder);
  }
  counters_.save_state(s);
}

void ExchangeChannel::load_state(Deserializer& d) {
  check_net_params(d, model_.params());
  Deserializer::check(d.get_u32() == num_nodes_,
                      "net snapshot: node count mismatch");
  Deserializer::check(d.get_u64() == links_.size(),
                      "net snapshot: link count mismatch");
  for (const Link& l : links_) {
    Deserializer::check(d.get_u32() == l.src,
                        "net snapshot: link topology mismatch");
    Deserializer::check(d.get_u32() == l.dst,
                        "net snapshot: link topology mismatch");
  }

  resolved_round_ = d.get_u64();
  for (Link& l : links_) l.applied = d.get_u64();
  const std::uint64_t pending = d.get_u64();
  std::vector<InFlight> inflight;
  inflight.reserve(pending);
  for (std::uint64_t i = 0; i < pending; ++i) {
    InFlight e;
    e.due = d.get_u64();
    e.payload = d.get_u64();
    e.link = d.get_u32();
    Deserializer::check(e.link < links_.size(),
                        "net snapshot: in-flight link out of range");
    e.attempt = d.get_u32();
    Deserializer::check(e.attempt <= model_.params().max_retries,
                        "net snapshot: in-flight attempt out of range");
    e.kind = d.get_u8();
    Deserializer::check(e.kind <= 1, "net snapshot: bad in-flight kind");
    e.reorder = d.get_u8();
    Deserializer::check(
        resolved_round_ == kNothing || e.due > resolved_round_,
        "net snapshot: in-flight message due in the past");
    inflight.push_back(e);
  }
  counters_.load_state(d);
  inflight_ = std::move(inflight);
  pending_.clear();
  std::fill(delivered_.begin(), delivered_.end(), std::uint8_t{0});
}

}  // namespace avcp::net
