#include "net/link_model.h"

#include <limits>

#include "common/contracts.h"
#include "common/rng.h"
#include "common/serial.h"

namespace avcp::net {

namespace {

/// Distinct hash streams so the drop, delay, duplicate, and reorder
/// predicates of the same message are independent (disjoint from the
/// faults::FaultModel ASCII tags by construction — different leading
/// bytes).
enum Stream : std::uint64_t {
  kDrop = 0x6e65743a64726f70ULL,      // "net:drop"
  kDelay = 0x6e65743a646c6179ULL,     // "net:dlay"
  kDelayLen = 0x6e65743a646c656eULL,  // "net:dlen"
  kDup = 0x6e65743a64757065ULL,       // "net:dupe"
  kDupLen = 0x6e65743a64706c6eULL,    // "net:dpln"
  kReorder = 0x6e65743a72656f72ULL,   // "net:reor"
  kPartition = 0x6e65743a70617274ULL,  // "net:part"
};

/// Absorbs one value into the running hash (splitmix64 finalizer over a
/// boost-style combine) — the fault_model.cpp mixer.
inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t s = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  return splitmix64(s);
}

inline bool valid_rate(double r) noexcept { return r >= 0.0 && r <= 1.0; }

}  // namespace

std::uint32_t PartitionWindow::component_of(std::uint32_t n) const noexcept {
  if (!component.empty()) {
    return n < component.size() ? component[n] : 0;
  }
  if (num_components <= 1) return 0;
  std::uint64_t h = mix(salt, kPartition);
  h = mix(h, n);
  return static_cast<std::uint32_t>(h % num_components);
}

bool NetParams::any() const noexcept {
  if (drop_rate > 0.0 || delay_rate > 0.0 || duplicate_rate > 0.0 ||
      reorder_rate > 0.0) {
    return true;
  }
  for (const PartitionWindow& w : partitions) {
    if (w.duration > 0 && (w.num_components > 1 || !w.component.empty())) {
      return true;
    }
  }
  return false;
}

void NetParams::validate() const {
  AVCP_EXPECT(valid_rate(drop_rate));
  AVCP_EXPECT(valid_rate(delay_rate));
  AVCP_EXPECT(valid_rate(duplicate_rate));
  AVCP_EXPECT(valid_rate(reorder_rate));
  // Delay/duplicate fates need a non-degenerate delay range, and every
  // bound below keeps the channel's in-flight horizon (and the engines'
  // payload rings) small and allocation-friendly.
  AVCP_EXPECT(max_delay_rounds >= 1 && max_delay_rounds <= 16);
  AVCP_EXPECT(max_retries <= 8);
  AVCP_EXPECT(backoff_base >= 1 && backoff_base <= 8);
  AVCP_EXPECT(max_staleness <= 32);
  for (const PartitionWindow& w : partitions) {
    // The window end must be representable (the OutageWindow rule): an
    // overflowing first_round + duration silently truncates the schedule.
    AVCP_EXPECT(w.duration <=
                std::numeric_limits<std::size_t>::max() - w.first_round);
    AVCP_EXPECT(w.num_components >= 1);
  }
}

LinkModel::LinkModel(NetParams params)
    : params_(std::move(params)), degrading_(params_.any()) {
  params_.validate();
}

double LinkModel::hash_uniform(std::uint64_t stream, std::uint64_t a,
                               std::uint64_t b, std::uint64_t c,
                               std::uint64_t d) const noexcept {
  std::uint64_t h = mix(params_.seed, stream);
  h = mix(h, a);
  h = mix(h, b);
  h = mix(h, c);
  h = mix(h, d);
  // 53 mantissa bits -> uniform in [0, 1), as Rng::uniform does.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint32_t LinkModel::component(std::size_t round,
                                   std::uint32_t n) const noexcept {
  for (const PartitionWindow& w : params_.partitions) {
    if (w.covers(round)) return w.component_of(n);
  }
  return 0;
}

bool LinkModel::severed(std::size_t round, std::uint32_t a,
                        std::uint32_t b) const noexcept {
  for (const PartitionWindow& w : params_.partitions) {
    if (w.covers(round) && w.component_of(a) != w.component_of(b)) {
      return true;
    }
  }
  return false;
}

MessageFate LinkModel::fate(std::size_t round, std::uint32_t src,
                            std::uint32_t dst, std::size_t payload_round,
                            std::size_t attempt) const noexcept {
  MessageFate f;
  // One key identifies the message instance: link endpoints fold into one
  // operand (region counts are far below 2^32), payload round and attempt
  // distinguish retransmissions of the same payload.
  const std::uint64_t link = (static_cast<std::uint64_t>(src) << 32) |
                             static_cast<std::uint64_t>(dst);
  if (params_.drop_rate > 0.0 &&
      hash_uniform(kDrop, round, link, payload_round, attempt) <
          params_.drop_rate) {
    f.kind = MessageFate::Kind::kDrop;
    return f;  // a dropped message neither duplicates nor reorders
  }
  if (params_.delay_rate > 0.0 &&
      hash_uniform(kDelay, round, link, payload_round, attempt) <
          params_.delay_rate) {
    f.kind = MessageFate::Kind::kDelay;
    f.delay_rounds =
        1 + static_cast<std::size_t>(
                hash_uniform(kDelayLen, round, link, payload_round, attempt) *
                static_cast<double>(params_.max_delay_rounds));
    if (f.delay_rounds > params_.max_delay_rounds) {
      f.delay_rounds = params_.max_delay_rounds;
    }
  }
  if (params_.duplicate_rate > 0.0 &&
      hash_uniform(kDup, round, link, payload_round, attempt) <
          params_.duplicate_rate) {
    f.duplicate = true;
    f.duplicate_delay =
        1 + static_cast<std::size_t>(
                hash_uniform(kDupLen, round, link, payload_round, attempt) *
                static_cast<double>(params_.max_delay_rounds));
    if (f.duplicate_delay > params_.max_delay_rounds) {
      f.duplicate_delay = params_.max_delay_rounds;
    }
  }
  if (params_.reorder_rate > 0.0 &&
      hash_uniform(kReorder, round, link, payload_round, attempt) <
          params_.reorder_rate) {
    f.reorder = true;
  }
  return f;
}

void put_net_params(Serializer& s, const NetParams& p) {
  s.put_f64(p.drop_rate);
  s.put_f64(p.delay_rate);
  s.put_u64(p.max_delay_rounds);
  s.put_f64(p.duplicate_rate);
  s.put_f64(p.reorder_rate);
  s.put_u64(p.max_retries);
  s.put_u64(p.backoff_base);
  s.put_u64(p.max_staleness);
  s.put_u64(p.seed);
  s.put_u64(p.partitions.size());
  for (const PartitionWindow& w : p.partitions) {
    s.put_u64(w.first_round);
    s.put_u64(w.duration);
    s.put_u32(w.num_components);
    s.put_u64(w.salt);
    put_u32_vec(s, w.component);
  }
}

void check_net_params(Deserializer& d, const NetParams& live) {
  const char* kWhat = "net snapshot: link-model params mismatch";
  Deserializer::check(d.get_f64() == live.drop_rate, kWhat);
  Deserializer::check(d.get_f64() == live.delay_rate, kWhat);
  Deserializer::check(d.get_u64() == live.max_delay_rounds, kWhat);
  Deserializer::check(d.get_f64() == live.duplicate_rate, kWhat);
  Deserializer::check(d.get_f64() == live.reorder_rate, kWhat);
  Deserializer::check(d.get_u64() == live.max_retries, kWhat);
  Deserializer::check(d.get_u64() == live.backoff_base, kWhat);
  Deserializer::check(d.get_u64() == live.max_staleness, kWhat);
  Deserializer::check(d.get_u64() == live.seed, kWhat);
  Deserializer::check(d.get_u64() == live.partitions.size(),
                      "net snapshot: partition schedule mismatch");
  for (const PartitionWindow& w : live.partitions) {
    Deserializer::check(d.get_u64() == w.first_round, kWhat);
    Deserializer::check(d.get_u64() == w.duration, kWhat);
    Deserializer::check(d.get_u32() == w.num_components, kWhat);
    Deserializer::check(d.get_u64() == w.salt, kWhat);
    Deserializer::check(get_u32_vec(d) == w.component, kWhat);
  }
}

}  // namespace avcp::net
