#include "faults/degraded_controller.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/serial.h"

namespace avcp::faults {

DegradedController::DegradedController(core::Controller& inner,
                                       const FaultModel& faults,
                                       DegradedOptions options)
    : inner_(inner), faults_(faults), options_(options) {
  AVCP_EXPECT(options_.max_step > 0.0);
  AVCP_EXPECT(options_.decay_step >= 0.0);
  AVCP_EXPECT(options_.decay_target >= 0.0 && options_.decay_target <= 1.0);
}

std::vector<double> DegradedController::next_x(
    const core::GameState& state, const std::vector<double>& x_prev) {
  std::vector<double> x_next;
  next_x_into(state, x_prev, x_next);
  return x_next;
}

void DegradedController::next_x_into(const core::GameState& state,
                                     const std::vector<double>& x_prev,
                                     std::vector<double>& out) {
  next_x_into(state, x_prev, out, nullptr);
}

void DegradedController::next_x_into(const core::GameState& state,
                                     const std::vector<double>& x_prev,
                                     std::vector<double>& out,
                                     const std::uint8_t* fresh_mask) {
  const std::size_t m = state.num_regions();
  AVCP_EXPECT(m >= 1);
  AVCP_EXPECT(x_prev.size() == m);
  if (last_good_.p.size() != m) {
    // Uniform prior: before any report arrives the cloud knows nothing
    // about the region's decision mix (and treats it as blind anyway).
    AVCP_EXPECT(!state.p.empty());
    last_good_.p.assign(
        m, std::vector<double>(state.p.front().size(),
                               1.0 / static_cast<double>(state.p.front().size())));
    age_.assign(m, kNever);
    degraded_.assign(m, 0);
  }

  // Ingest this round's reports.
  for (core::RegionId i = 0; i < m; ++i) {
    const bool fresh = fresh_mask != nullptr
                           ? fresh_mask[i] != 0
                           : faults_.report_available(round_, i);
    if (fresh) {
      last_good_.p[i] = state.p[i];
      age_[i] = 0;
    } else {
      ++counters_.reports_lost;
      if (age_[i] != kNever) ++age_[i];
    }
    degraded_[i] =
        (age_[i] == kNever || age_[i] > options_.staleness_budget) ? 1 : 0;
  }

  // The inner controller sees the last good report of every region: stale
  // rows are real (just old) data, and blind rows only matter through the
  // inter-region coupling terms, where old data beats garbage.
  inner_.next_x_into(last_good_, x_prev, inner_x_);
  const std::vector<double>& x_inner = inner_x_;
  AVCP_ENSURE(x_inner.size() == m);

  std::vector<double>& x_next = out;
  x_next.assign(m, 0.0);
  for (core::RegionId i = 0; i < m; ++i) {
    const double xi = std::clamp(x_prev[i], 0.0, 1.0);
    if (!degraded_[i]) {
      // A non-finite inner ratio (a buggy or poisoned inner controller) is
      // treated as no update: the wrapper's safety contract is that the
      // applied ratio is always a valid ratio, so hold the last good one
      // rather than propagate NaN into the plant.
      const double target = std::isfinite(x_inner[i]) ? x_inner[i] : xi;
      const double delta =
          std::clamp(target - xi, -options_.max_step, options_.max_step);
      x_next[i] = std::clamp(xi + delta, 0.0, 1.0);
      continue;
    }
    if (options_.fallback == DegradedOptions::Fallback::kHold) {
      x_next[i] = xi;
      continue;
    }
    const double step = std::min(options_.decay_step, options_.max_step);
    const double delta =
        std::clamp(options_.decay_target - xi, -step, step);
    x_next[i] = std::clamp(xi + delta, 0.0, 1.0);
  }
  ++round_;
}

std::size_t DegradedController::report_age(core::RegionId i) const {
  AVCP_EXPECT(i < age_.size());
  return age_[i];
}

bool DegradedController::degraded(core::RegionId i) const {
  AVCP_EXPECT(i < degraded_.size());
  return degraded_[i] != 0;
}

void DegradedController::reset() {
  round_ = 0;
  last_good_.p.clear();
  age_.clear();
  degraded_.clear();
  counters_ = FaultCounters{};
}

void DegradedController::save_state(Serializer& s) const {
  s.put_u64(round_);
  last_good_.save_state(s);
  put_size_vec(s, age_);
  put_u8_vec(s, degraded_);
  counters_.save_state(s);
}

void DegradedController::load_state(Deserializer& d) {
  round_ = static_cast<std::size_t>(d.get_u64());
  last_good_.load_state(d);
  age_ = get_size_vec(d);
  degraded_ = get_u8_vec(d);
  Deserializer::check(age_.size() == last_good_.p.size() &&
                          degraded_.size() == last_good_.p.size(),
                      "DegradedController per-region vectors disagree");
  counters_.load_state(d);
}

}  // namespace avcp::faults
