#include "faults/fault_model.h"

#include <limits>

#include "common/contracts.h"
#include "common/rng.h"
#include "common/serial.h"

namespace avcp::faults {

namespace {

/// Distinct hash streams so e.g. upload and delivery faults of the same
/// (round, region) indices are independent.
enum Stream : std::uint64_t {
  kUpload = 0x75706c6f61646673ULL,
  kDelivery = 0x64656c6976657279ULL,
  kReport = 0x7265706f72746673ULL,
  kOutage = 0x6f75746167656673ULL,
  kDefector = 0x6465666563746f72ULL,
};

/// Absorbs one value into the running hash (splitmix64 finalizer over a
/// boost-style combine).
inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t s = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  return splitmix64(s);
}

inline bool valid_rate(double r) noexcept { return r >= 0.0 && r <= 1.0; }

}  // namespace

bool FaultParams::any() const noexcept {
  if (upload_loss_rate > 0.0 || delivery_loss_rate > 0.0 ||
      report_loss_rate > 0.0 || outage_rate > 0.0 || defector_fraction > 0.0) {
    return true;
  }
  for (const OutageWindow& w : outages) {
    if (w.duration > 0) return true;
  }
  return false;
}

FaultCounters& FaultCounters::operator+=(const FaultCounters& other) noexcept {
  uploads_lost += other.uploads_lost;
  deliveries_lost += other.deliveries_lost;
  reports_lost += other.reports_lost;
  region_outages += other.region_outages;
  return *this;
}

void FaultCounters::save_state(Serializer& s) const {
  s.put_u64(uploads_lost);
  s.put_u64(deliveries_lost);
  s.put_u64(reports_lost);
  s.put_u64(region_outages);
}

void FaultCounters::load_state(Deserializer& d) {
  uploads_lost = static_cast<std::size_t>(d.get_u64());
  deliveries_lost = static_cast<std::size_t>(d.get_u64());
  reports_lost = static_cast<std::size_t>(d.get_u64());
  region_outages = static_cast<std::size_t>(d.get_u64());
}

void FaultParams::validate() const {
  AVCP_EXPECT(valid_rate(upload_loss_rate));
  AVCP_EXPECT(valid_rate(delivery_loss_rate));
  AVCP_EXPECT(valid_rate(report_loss_rate));
  AVCP_EXPECT(valid_rate(outage_rate));
  AVCP_EXPECT(valid_rate(defector_fraction));
  for (const OutageWindow& w : outages) {
    // The window end first_round + duration must be representable: an
    // overflowing end silently truncates the schedule at SIZE_MAX and is
    // invariably a caller arithmetic bug, so reject it up front.
    AVCP_EXPECT(w.duration <=
                std::numeric_limits<std::size_t>::max() - w.first_round);
  }
}

FaultModel::FaultModel(FaultParams params)
    : params_(std::move(params)), active_(params_.any()) {
  params_.validate();
}

double FaultModel::hash_uniform(std::uint64_t stream, std::uint64_t a,
                                std::uint64_t b, std::uint64_t c,
                                std::uint64_t d) const noexcept {
  std::uint64_t h = mix(params_.seed, stream);
  h = mix(h, a);
  h = mix(h, b);
  h = mix(h, c);
  h = mix(h, d);
  // 53 mantissa bits -> uniform in [0, 1), as Rng::uniform does.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultModel::upload_lost(std::size_t round, core::RegionId region,
                             std::size_t exchange,
                             std::size_t vehicle) const noexcept {
  if (params_.upload_loss_rate <= 0.0) return false;
  return hash_uniform(kUpload, round, region, exchange, vehicle) <
         params_.upload_loss_rate;
}

bool FaultModel::delivery_lost(std::size_t round, core::RegionId region,
                               std::size_t exchange, std::size_t receiver,
                               std::size_t sender) const noexcept {
  if (params_.delivery_loss_rate <= 0.0) return false;
  // Fold receiver and sender into one key so the predicate keeps the
  // 4-operand hash; exchanges and fleets are far below 2^32.
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(receiver) << 32) |
      static_cast<std::uint64_t>(sender & 0xffffffffULL);
  return hash_uniform(kDelivery, round, region, exchange, pair) <
         params_.delivery_loss_rate;
}

bool FaultModel::report_lost(std::size_t round,
                             core::RegionId region) const noexcept {
  if (params_.report_loss_rate <= 0.0) return false;
  return hash_uniform(kReport, round, region, 0, 0) <
         params_.report_loss_rate;
}

bool FaultModel::region_down(std::size_t round,
                             core::RegionId region) const noexcept {
  for (const OutageWindow& w : params_.outages) {
    if (w.covers(round, region)) return true;
  }
  if (params_.outage_rate <= 0.0) return false;
  return hash_uniform(kOutage, round, region, 0, 0) < params_.outage_rate;
}

bool FaultModel::vehicle_defects(core::RegionId region,
                                 std::size_t vehicle) const noexcept {
  if (params_.defector_fraction <= 0.0) return false;
  return hash_uniform(kDefector, region, vehicle, 0, 0) <
         params_.defector_fraction;
}

}  // namespace avcp::faults
