// Process-kill injection for crash-recovery testing.
//
// The fault layer's other models perturb the *data path*; CrashInjector
// kills the *process* — the failure mode the checkpoint subsystem exists
// for. A plan names one round and one stage:
//
//   kBeforeRound         die just before round R runs;
//   kAfterRound          die right after round R's work completes, before
//                        any checkpoint for it is written (the work since
//                        the last snapshot is lost and must be re-stepped);
//   kMidCheckpointWrite  die in the middle of writing the checkpoint that
//                        represents R completed rounds, leaving a *torn
//                        file at the final path* (the non-atomic worst
//                        case a real crash plus a reordering filesystem
//                        can produce), so recovery must fall back a
//                        generation.
//
// Death is std::_Exit(kExitCode): no unwinding, no atexit, no flush — an
// honest SIGKILL stand-in that still lets a supervising script distinguish
// the injected kill from a genuine failure by exit code. Plans parse from
// a "stage:round" spec ("before:5", "after:7", "midwrite:3") so the CI
// smoke job can drive the same binary through crash-rerun-compare cycles
// via an environment variable.
#pragma once

#include <cstdint>
#include <string_view>

namespace avcp::faults {

enum class CrashStage : std::uint8_t {
  kNone = 0,
  kBeforeRound,
  kAfterRound,
  kMidCheckpointWrite,
};

struct CrashPlan {
  CrashStage stage = CrashStage::kNone;
  /// 0-based round index the stage refers to.
  std::size_t round = 0;
};

class CrashInjector {
 public:
  /// Exit code of an injected kill, distinct from success (0) and from
  /// generic failure (1) so supervisors can assert the crash was ours.
  static constexpr int kExitCode = 42;

  explicit CrashInjector(CrashPlan plan = {}) : plan_(plan) {}

  /// Parses "before:R" / "after:R" / "midwrite:R". An empty or
  /// unrecognized spec yields a disarmed plan.
  static CrashPlan parse_plan(std::string_view spec);

  /// Injector from the given environment variable (disarmed when unset).
  static CrashInjector from_env(const char* var = "AVCP_CRASH");

  const CrashPlan& plan() const noexcept { return plan_; }
  bool armed() const noexcept { return plan_.stage != CrashStage::kNone; }

  /// Call at the top of round `round`; dies if the plan says kBeforeRound.
  void before_round(std::size_t round) const;

  /// Call after round `round` completes; dies if the plan says kAfterRound.
  void after_round(std::size_t round) const;

  /// True when the checkpoint representing `completed_rounds` should be
  /// torn: the caller writes the truncated image to the final path (e.g.
  /// CheckpointWriter::write_torn with half the image), then crash().
  bool tears_checkpoint(std::size_t completed_rounds) const noexcept {
    return plan_.stage == CrashStage::kMidCheckpointWrite &&
           plan_.round == completed_rounds;
  }

  /// Immediate death, no unwinding (std::_Exit(kExitCode)).
  [[noreturn]] static void crash();

 private:
  CrashPlan plan_;
};

}  // namespace avcp::faults
