#include "faults/crash_injector.h"

#include <cstdlib>
#include <string>

namespace avcp::faults {

CrashPlan CrashInjector::parse_plan(std::string_view spec) {
  CrashPlan plan;
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos) return plan;
  const std::string_view stage = spec.substr(0, colon);
  const std::string_view round = spec.substr(colon + 1);
  if (round.empty()) return plan;
  std::size_t value = 0;
  for (const char c : round) {
    if (c < '0' || c > '9') return plan;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  if (stage == "before") {
    plan.stage = CrashStage::kBeforeRound;
  } else if (stage == "after") {
    plan.stage = CrashStage::kAfterRound;
  } else if (stage == "midwrite") {
    plan.stage = CrashStage::kMidCheckpointWrite;
  } else {
    return plan;
  }
  plan.round = value;
  return plan;
}

CrashInjector CrashInjector::from_env(const char* var) {
  const char* spec = std::getenv(var);
  return CrashInjector(spec != nullptr ? parse_plan(spec) : CrashPlan{});
}

void CrashInjector::before_round(std::size_t round) const {
  if (plan_.stage == CrashStage::kBeforeRound && plan_.round == round) {
    crash();
  }
}

void CrashInjector::after_round(std::size_t round) const {
  if (plan_.stage == CrashStage::kAfterRound && plan_.round == round) {
    crash();
  }
}

void CrashInjector::crash() { std::_Exit(kExitCode); }

}  // namespace avcp::faults
