// Graceful degradation for the cloud control plane.
//
// The paper's Algorithm 2 assumes the cloud sees every region's decision
// report every round (step S1). Under report loss or an edge-server outage
// the inner controller would act on garbage: a missing row would read as
// an arbitrary stale or zeroed distribution and the computed ratio could
// jump the population anywhere the smoothness bound allows.
//
// DegradedController wraps any core::Controller and consults a FaultModel
// for which reports actually arrived:
//   - fresh report          -> delegate to the inner controller as usual;
//   - stale within budget   -> substitute the last good report (the cloud
//                              acts on slightly old but real data);
//   - older than the budget -> hold the region's ratio, or decay it toward
//                              a conservative target, in steps <= Lambda;
//   - report resumes        -> re-synchronize and delegate again.
// The wrapper additionally enforces the invariants the plant relies on:
// every emitted ratio lies in [0, 1] and |x_i^{t+1} - x_i^t| <= Lambda,
// even if the inner controller misbehaves.
//
// Round accounting: the wrapper advances its round counter once per
// next_x call. The plant calls the controller exactly once per framework
// round, so a CooperativePerceptionSystem and a DegradedController sharing
// one FaultModel stay in lock-step from round 0.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fds.h"
#include "faults/fault_model.h"

namespace avcp::faults {

struct DegradedOptions {
  /// Rounds a held (stale) report stays usable before the region is
  /// treated as blind. 0 = only fresh reports are acted on.
  std::size_t staleness_budget = 3;
  /// Lambda of Eq. (13): per-round cap on |x_i^{t+1} - x_i^t|, enforced on
  /// the wrapper's output. Should match the inner controller's bound.
  double max_step = 0.05;
  /// What to do with a blind region's ratio.
  enum class Fallback : std::uint8_t {
    kHold = 0,   // keep x_i unchanged until reports resume
    kDecay = 1,  // move x_i toward decay_target by decay_step per round
  };
  Fallback fallback = Fallback::kHold;
  /// Conservative ratio approached while blind (kDecay). 0 = stop sharing:
  /// no fresh reports means no evidence the pool is still incentive-safe.
  double decay_target = 0.0;
  /// Per-round decay magnitude; capped by max_step.
  double decay_step = 0.02;
};

class DegradedController final : public core::Controller {
 public:
  /// `inner` and `faults` must outlive the wrapper.
  DegradedController(core::Controller& inner, const FaultModel& faults,
                     DegradedOptions options = {});

  std::vector<double> next_x(const core::GameState& state,
                             const std::vector<double>& x_prev) override;
  void next_x_into(const core::GameState& state,
                   const std::vector<double>& x_prev,
                   std::vector<double>& out) override;

  /// Same step, but with the freshness verdict supplied by the caller:
  /// fresh_mask[i] != 0 means a usable report for region i arrived this
  /// round (null = consult the FaultModel, the overload above). The
  /// degraded-network transport uses this to route delivered, delayed, and
  /// lost backhaul reports through the same hold/decay machinery — the
  /// channel bounds how *old* consumed data can be (max_staleness), this
  /// wrapper bounds how long a *blind* region may coast (staleness_budget).
  void next_x_into(const core::GameState& state,
                   const std::vector<double>& x_prev,
                   std::vector<double>& out, const std::uint8_t* fresh_mask);

  /// Rounds processed so far (== number of next_x calls).
  std::size_t round() const noexcept { return round_; }

  /// Rounds since the last good report of region i (0 = fresh this round);
  /// kNever until the first report arrives.
  static constexpr std::size_t kNever = ~std::size_t{0};
  std::size_t report_age(core::RegionId i) const;

  /// True if region i was blind (no usable report) in the last round.
  bool degraded(core::RegionId i) const;

  const FaultCounters& counters() const noexcept { return counters_; }

  /// Forgets all held reports and restarts the round counter.
  void reset();

  /// Checkpoint hooks: round counter, held reports with their ages, the
  /// degraded flags, and the loss counters — everything next_x consults
  /// beyond its arguments, so a restored wrapper emits the same ratios.
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);

 private:
  core::Controller& inner_;
  const FaultModel& faults_;
  DegradedOptions options_;
  std::size_t round_ = 0;
  /// Last good report per region (uniform prior until one arrives).
  core::GameState last_good_;
  std::vector<std::size_t> age_;
  std::vector<std::uint8_t> degraded_;
  FaultCounters counters_;
  /// Grow-only scratch for the inner controller's ratios (next_x_into).
  std::vector<double> inner_x_;
};

}  // namespace avcp::faults
