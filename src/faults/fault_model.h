// Deterministic fault injection for the closed V2X loop (robustness layer).
//
// The paper's framework (Fig. 1, S1-S5) assumes every round's decision
// reports, uploads, and distributions complete losslessly. Real deployments
// do not: V2X links drop frames, edge servers crash, and reports arrive
// stale at the cloud. FaultModel is the single source of truth for *what*
// fails *when*: per-round upload loss (a vehicle's decision-filtered upload
// never reaches its edge server), delivery loss (an accepted distribution
// is lost in flight to the receiver), report loss (a region's S1 decision
// report never reaches the cloud), edge-server outages (a region skips its
// exchange round entirely, scheduled or random), and defector vehicles
// that never revise their decision.
//
// Every predicate is a *pure hash* of (seed, stream, indices) — no mutable
// RNG state — so a schedule is reproducible from a single seed regardless
// of query order or count, and two components (the plant's data plane and
// the cloud's DegradedController) can consult the same model independently
// without perturbing each other's streams.
#pragma once

#include <cstdint>
#include <vector>

#include "core/game.h"

namespace avcp {
class Serializer;
class Deserializer;
}  // namespace avcp

namespace avcp::faults {

/// A scheduled edge-server outage: `region` (or every region) is down for
/// rounds [first_round, first_round + duration).
struct OutageWindow {
  /// Sentinel: the outage hits every region.
  static constexpr core::RegionId kAllRegions = ~core::RegionId{0};

  core::RegionId region = kAllRegions;
  std::size_t first_round = 0;
  std::size_t duration = 0;

  bool covers(std::size_t round, core::RegionId r) const noexcept {
    return (region == kAllRegions || region == r) && round >= first_round &&
           round - first_round < duration;
  }
};

struct FaultParams {
  /// Probability a vehicle's upload is lost on the V2X uplink, per
  /// (round, exchange, vehicle). A lost upload never reaches the server:
  /// it shrinks the pool and costs the vehicle no privacy exposure.
  double upload_loss_rate = 0.0;
  /// Probability an accepted sender->receiver distribution is lost on the
  /// downlink. The uploader's privacy was already spent at the server;
  /// only the receiver's realized utility suffers.
  double delivery_loss_rate = 0.0;
  /// Probability a region's S1 decision report never reaches the cloud
  /// this round (independent of outages; a down region cannot report
  /// either).
  double report_loss_rate = 0.0;
  /// Probability a region's edge servers are down for a whole round
  /// (random outages, on top of any scheduled windows).
  double outage_rate = 0.0;
  /// Fraction of vehicles that never revise their decision (stuck or
  /// silent agents). Strategic misbehaviour — vehicles that *lie* rather
  /// than stall — lives in byzantine::AdversaryModel.
  double defector_fraction = 0.0;
  /// Deterministic outage windows, e.g. "all edge servers down for rounds
  /// 30..39".
  std::vector<OutageWindow> outages;
  std::uint64_t seed = 0;

  /// True if any fault can ever fire. A model with any() == false is
  /// inert: the plant's zero-fault path is bit-identical to running with
  /// no model at all.
  bool any() const noexcept;

  /// Construction-time range checks (every rate in [0, 1], no overflowing
  /// outage window). FaultModel's constructor calls this; callers that
  /// build params long before the model exists (scenario catalog, CLI
  /// parsing) can call it directly to fail at definition time.
  void validate() const;
};

/// Loss counters accumulated by the degraded paths.
struct FaultCounters {
  std::size_t uploads_lost = 0;     // vehicle uploads dropped on the uplink
  std::size_t deliveries_lost = 0;  // items dropped on the downlink
  std::size_t reports_lost = 0;     // region-rounds with no usable report
  std::size_t region_outages = 0;   // region-rounds skipped entirely

  FaultCounters& operator+=(const FaultCounters& other) noexcept;

  friend bool operator==(const FaultCounters&, const FaultCounters&) = default;

  /// Checkpoint hooks (the counters accumulate across the whole run).
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);
};

class FaultModel {
 public:
  explicit FaultModel(FaultParams params);

  const FaultParams& params() const noexcept { return params_; }
  bool active() const noexcept { return active_; }

  /// Vehicle `vehicle`'s upload in exchange `exchange` of `round` in
  /// `region` is lost on the uplink.
  bool upload_lost(std::size_t round, core::RegionId region,
                   std::size_t exchange, std::size_t vehicle) const noexcept;

  /// The distribution from `sender` to `receiver` is lost on the downlink.
  bool delivery_lost(std::size_t round, core::RegionId region,
                     std::size_t exchange, std::size_t receiver,
                     std::size_t sender) const noexcept;

  /// The region's S1 decision report is lost en route to the cloud.
  bool report_lost(std::size_t round, core::RegionId region) const noexcept;

  /// The region's edge servers are down this round (scheduled window or
  /// random outage): no uploads, no distribution, no report.
  bool region_down(std::size_t round, core::RegionId region) const noexcept;

  /// A fresh report from `region` reaches the cloud this round.
  bool report_available(std::size_t round, core::RegionId region) const noexcept {
    return !region_down(round, region) && !report_lost(round, region);
  }

  /// The vehicle never revises its decision (round-independent).
  bool vehicle_defects(core::RegionId region, std::size_t vehicle) const noexcept;

 private:
  double hash_uniform(std::uint64_t stream, std::uint64_t a, std::uint64_t b,
                      std::uint64_t c, std::uint64_t d) const noexcept;

  FaultParams params_;
  bool active_;
};

}  // namespace avcp::faults
