// Road-network CSV interchange.
//
// Two-section format so a network survives round trips and external tools
// (QGIS, pandas) can consume it:
//
//   section,id,x_or_from,y_or_to,class,speed_mps
//   node,<id>,<x_m>,<y_m>,,
//   segment,<id>,<from>,<to>,<arterial|collector|local>,<speed>
//
// Lengths are recomputed from node positions on load, so files cannot
// introduce inconsistent geometry.
#pragma once

#include <iosfwd>
#include <string_view>

#include "roadnet/road_graph.h"

namespace avcp::roadnet {

/// Writes a finalized graph.
void write_graph_csv(std::ostream& out, const RoadGraph& graph);

/// Reads and finalizes a graph; throws ContractViolation on malformed rows,
/// unknown classes, or dangling segment endpoints.
RoadGraph read_graph_csv(std::istream& in);

/// Name <-> enum helpers for the class column.
const char* road_class_name(RoadClass cls) noexcept;
RoadClass parse_road_class(std::string_view name);

}  // namespace avcp::roadnet
