// Road-network construction.
//
// CityBuilder substitutes for the paper's OpenStreetMap extract of Futian
// district (see DESIGN.md section 1): it lays a jittered street grid over
// the bounding box with an arterial/collector/local hierarchy and prunes a
// fraction of local streets, which yields the heavy-tailed betweenness and
// traffic-density distributions the clustering stage (Fig. 8) relies on.
// The small make_* helpers build canonical graphs for tests.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "roadnet/road_graph.h"

namespace avcp::roadnet {

/// Parameters of the procedural city.
struct CityParams {
  /// Grid dimensions (intersections). 24x32 at Futian scale gives ~1.4k
  /// segments; raise for larger studies.
  std::uint32_t rows = 24;
  std::uint32_t cols = 32;
  /// Spacing between adjacent intersections, metres.
  double spacing_m = 320.0;
  /// Every k-th row/column is an arterial (k = arterial_period).
  std::uint32_t arterial_period = 8;
  /// Every k-th row/column is a collector (applied after arterials).
  std::uint32_t collector_period = 4;
  /// Positional jitter as a fraction of spacing (0 disables).
  double jitter_frac = 0.18;
  /// Fraction of *local* segments removed (connectivity is preserved).
  double local_prune_frac = 0.22;
  /// RNG seed for jitter and pruning.
  std::uint64_t seed = 42;
};

/// Builds a finalized, connected procedural city.
RoadGraph build_city(const CityParams& params);

/// Rectangular grid without hierarchy or jitter; all segments kLocal.
RoadGraph make_grid(std::uint32_t rows, std::uint32_t cols,
                    double spacing_m = 100.0);

/// Simple path graph with n intersections (n - 1 segments).
RoadGraph make_line(std::uint32_t n, double spacing_m = 100.0);

/// Cycle graph with n intersections (n segments). Requires n >= 3.
RoadGraph make_ring(std::uint32_t n, double radius_m = 100.0);

}  // namespace avcp::roadnet
