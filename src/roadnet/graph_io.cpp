#include "roadnet/graph_io.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <string>

#include "common/contracts.h"
#include "common/csv.h"

namespace avcp::roadnet {

namespace {

double parse_double(const std::string& s) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  AVCP_EXPECT(ec == std::errc{} && ptr == s.data() + s.size());
  return value;
}

std::uint32_t parse_u32(const std::string& s) {
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  AVCP_EXPECT(ec == std::errc{} && ptr == s.data() + s.size());
  return value;
}

}  // namespace

const char* road_class_name(RoadClass cls) noexcept {
  switch (cls) {
    case RoadClass::kArterial:
      return "arterial";
    case RoadClass::kCollector:
      return "collector";
    case RoadClass::kLocal:
      return "local";
  }
  return "local";
}

RoadClass parse_road_class(std::string_view name) {
  if (name == "arterial") return RoadClass::kArterial;
  if (name == "collector") return RoadClass::kCollector;
  AVCP_EXPECT(name == "local");
  return RoadClass::kLocal;
}

void write_graph_csv(std::ostream& out, const RoadGraph& graph) {
  AVCP_EXPECT(graph.finalized());
  CsvWriter writer(out);
  writer.write_row({"section", "id", "x_or_from", "y_or_to", "class",
                    "speed_mps"});
  for (NodeId v = 0; v < graph.num_intersections(); ++v) {
    const PointM& p = graph.intersection(v);
    writer.write_row({"node", std::to_string(v), std::to_string(p.x),
                      std::to_string(p.y), "", ""});
  }
  for (SegmentId s = 0; s < graph.num_segments(); ++s) {
    const RoadSegment& seg = graph.segment(s);
    writer.write_row({"segment", std::to_string(s), std::to_string(seg.from),
                      std::to_string(seg.to), road_class_name(seg.cls),
                      std::to_string(seg.speed_mps)});
  }
}

RoadGraph read_graph_csv(std::istream& in) {
  const auto rows = read_csv(in);
  AVCP_EXPECT(!rows.empty());
  RoadGraph graph;
  for (std::size_t r = 1; r < rows.size(); ++r) {  // row 0 is the header
    const auto& row = rows[r];
    AVCP_EXPECT(row.size() == 6);
    if (row[0] == "node") {
      // Ids must be dense and in order so segment endpoints resolve.
      const NodeId id = parse_u32(row[1]);
      AVCP_EXPECT(id == graph.num_intersections());
      graph.add_intersection(PointM{parse_double(row[2]), parse_double(row[3])});
    } else {
      AVCP_EXPECT(row[0] == "segment");
      const NodeId from = parse_u32(row[2]);
      const NodeId to = parse_u32(row[3]);
      AVCP_EXPECT(from < graph.num_intersections());
      AVCP_EXPECT(to < graph.num_intersections());
      graph.add_segment(from, to, parse_road_class(row[4]),
                        parse_double(row[5]));
    }
  }
  graph.finalize();
  return graph;
}

}  // namespace avcp::roadnet
