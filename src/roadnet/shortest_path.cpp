#include "roadnet/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/contracts.h"

namespace avcp::roadnet {

namespace {

double hop_cost(const RoadGraph& g, SegmentId s, PathMetric metric) {
  switch (metric) {
    case PathMetric::kHops:
      return 1.0;
    case PathMetric::kDistance:
      return g.segment(s).length_m;
    case PathMetric::kTravelTime:
      return g.segment(s).travel_time_s();
  }
  return 1.0;
}

struct SearchResult {
  std::vector<double> dist;
  std::vector<Hop> parent;  // parent[v] = {segment into v, previous node}
};

SearchResult dijkstra(const RoadGraph& g, NodeId from, PathMetric metric) {
  AVCP_EXPECT(g.finalized());
  AVCP_EXPECT(from < g.num_intersections());
  const std::size_t n = g.num_intersections();
  SearchResult res;
  res.dist.assign(n, std::numeric_limits<double>::infinity());
  res.parent.assign(n, Hop{});
  res.dist[from] = 0.0;

  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, from);
  std::vector<bool> settled(n, false);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (settled[v]) continue;
    settled[v] = true;
    for (const Hop& hop : g.neighbors(v)) {
      const double nd = d + hop_cost(g, hop.segment, metric);
      if (nd < res.dist[hop.node]) {
        res.dist[hop.node] = nd;
        res.parent[hop.node] = Hop{hop.segment, v};
        heap.emplace(nd, hop.node);
      }
    }
  }
  return res;
}

}  // namespace

std::optional<Route> shortest_path(const RoadGraph& g, NodeId from, NodeId to,
                                   PathMetric metric) {
  AVCP_EXPECT(to < g.num_intersections());
  const SearchResult res = dijkstra(g, from, metric);
  if (res.dist[to] == std::numeric_limits<double>::infinity()) {
    return std::nullopt;
  }
  Route route;
  route.cost = res.dist[to];
  NodeId cursor = to;
  route.nodes.push_back(cursor);
  while (cursor != from) {
    const Hop& hop = res.parent[cursor];
    route.segments.push_back(hop.segment);
    cursor = hop.node;
    route.nodes.push_back(cursor);
  }
  std::reverse(route.nodes.begin(), route.nodes.end());
  std::reverse(route.segments.begin(), route.segments.end());
  return route;
}

std::vector<double> shortest_costs(const RoadGraph& g, NodeId from,
                                   PathMetric metric) {
  return dijkstra(g, from, metric).dist;
}

}  // namespace avcp::roadnet
