// Betweenness centrality of road segments (Eq. (2) of the paper).
//
// The paper measures the importance of a road segment by the fraction of
// shortest paths that traverse it. On the intersection graph this is the
// classical *edge* betweenness, computed here with Brandes' accumulation
// (O(N*M) unweighted, O(N*(M + N log N)) weighted). An optional sampled
// variant trades exactness for speed on large networks, normalising by the
// sampled source count so values stay comparable to the exact ones.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "roadnet/road_graph.h"

namespace avcp::roadnet {

/// How path length is measured when counting shortest paths.
enum class PathMetric : std::uint8_t {
  kHops = 0,        // unweighted BFS
  kDistance = 1,    // segment length, Dijkstra
  kTravelTime = 2,  // length / speed, Dijkstra
};

struct BetweennessOptions {
  PathMetric metric = PathMetric::kHops;
  /// Normalise by (N-1)(N-2) as in Eq. (2) so values are comparable across
  /// network sizes. When false, raw pair counts are returned.
  bool normalize = true;
  /// Worker threads for the per-source accumulation passes (Brandes is
  /// embarrassingly parallel across sources). 0 = hardware concurrency.
  /// Sources are chunked independently of the thread count and the chunk
  /// partials are reduced in chunk order, so the result is bit-identical at
  /// every thread count (and therefore across machines at the default).
  std::size_t num_threads = 1;
};

/// Exact per-segment betweenness centrality.
std::vector<double> segment_betweenness(const RoadGraph& g,
                                        const BetweennessOptions& opts = {});

/// Approximate betweenness from `num_sources` sampled BFS/Dijkstra roots,
/// rescaled to estimate the exact value. Requires num_sources >= 1.
std::vector<double> sampled_segment_betweenness(
    const RoadGraph& g, std::size_t num_sources, Rng& rng,
    const BetweennessOptions& opts = {});

}  // namespace avcp::roadnet
