// Betweenness centrality of road segments (Eq. (2) of the paper).
//
// The paper measures the importance of a road segment by the fraction of
// shortest paths that traverse it. On the intersection graph this is the
// classical *edge* betweenness, computed here with Brandes' accumulation
// (O(N*M) unweighted, O(N*(M + N log N)) weighted). An optional sampled
// variant trades exactness for speed on large networks, normalising by the
// sampled source count so values stay comparable to the exact ones.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "roadnet/road_graph.h"

namespace avcp::roadnet {

/// How path length is measured when counting shortest paths.
enum class PathMetric : std::uint8_t {
  kHops = 0,        // unweighted BFS
  kDistance = 1,    // segment length, Dijkstra
  kTravelTime = 2,  // length / speed, Dijkstra
};

struct BetweennessOptions {
  PathMetric metric = PathMetric::kHops;
  /// Normalise by (N-1)(N-2) as in Eq. (2) so values are comparable across
  /// network sizes. When false, raw pair counts are returned.
  bool normalize = true;
  /// Worker threads for the per-source accumulation passes (Brandes is
  /// embarrassingly parallel across sources). 0 = hardware concurrency.
  /// Sources are chunked independently of the thread count and the chunk
  /// partials are reduced in chunk order, so the result is bit-identical at
  /// every thread count (and therefore across machines at the default).
  std::size_t num_threads = 1;
};

/// Exact per-segment betweenness centrality.
std::vector<double> segment_betweenness(const RoadGraph& g,
                                        const BetweennessOptions& opts = {});

/// Approximate betweenness from `num_sources` sampled BFS/Dijkstra roots,
/// rescaled to estimate the exact value. Requires num_sources >= 1.
std::vector<double> sampled_segment_betweenness(
    const RoadGraph& g, std::size_t num_sources, Rng& rng,
    const BetweennessOptions& opts = {});

/// Exact betweenness under caller-supplied per-segment weights (one finite
/// positive weight per segment; Dijkstra path counting with the relative
/// tie tolerance). `opts.metric` is ignored — the weights *are* the metric;
/// normalize / num_threads apply as usual. This is the from-scratch
/// reference for IncrementalBetweenness below: for any weight vector the
/// two agree bit for bit.
std::vector<double> segment_betweenness_weighted(
    const RoadGraph& g, std::span<const double> weights,
    const BetweennessOptions& opts = {});

/// Chunk-cached Brandes for slowly-drifting weights (the service layer's
/// congestion-scaled travel times, which change on a handful of segments
/// per epoch as vehicles join, leave, and migrate).
///
/// The source set is split into the same <= 64 contiguous chunks the batch
/// path uses, and each chunk's partial accumulation is cached together with
/// every source's distance array. update_weights() re-runs only the chunks
/// containing an *affected* source and re-reduces the cached partials in
/// chunk order, so the floating-point summation order — and therefore the
/// centrality, bit for bit — is identical to segment_betweenness_weighted
/// over the current weights at every thread count.
///
/// A source s is provably unaffected by a weight change on segment (a, b)
/// when min(d_s(a), d_s(b)) + min(w_old, w_new) exceeds max(d_s(a), d_s(b))
/// by more than a tolerance window wider than the Dijkstra tie window: the
/// segment was on no counted shortest path before and cannot join (or
/// shorten) one after, so s's whole dependency accumulation is unchanged.
/// The test is conservative (borderline sources recompute needlessly) and
/// applies per changed segment, so any batch of simultaneous changes is
/// sound. Memory: one distance array per intersection (O(N^2) doubles) —
/// sized for the service-scale road graphs, not continental networks.
class IncrementalBetweenness {
 public:
  /// `g` must outlive the object and stay unchanged (weights are the only
  /// mutable input). Computes the initial centrality from scratch.
  IncrementalBetweenness(const RoadGraph& g, std::vector<double> weights,
                         BetweennessOptions opts = {});

  struct UpdateStats {
    std::size_t segments_changed = 0;
    std::size_t sources_affected = 0;
    std::size_t chunks_recomputed = 0;
  };

  /// Applies the weight changes (parallel arrays; later duplicates win) and
  /// refreshes the affected chunks. Entries whose weight is bit-equal to
  /// the current one are ignored.
  UpdateStats update_weights(std::span<const SegmentId> segments,
                             std::span<const double> new_weights);

  /// Current centrality — bit-equal to segment_betweenness_weighted(g,
  /// weights(), opts) at all times.
  const std::vector<double>& centrality() const noexcept {
    return centrality_;
  }

  std::span<const double> weights() const noexcept { return weights_; }
  std::size_t num_chunks() const noexcept { return num_chunks_; }

 private:
  void recompute_chunks(const std::vector<std::uint8_t>& dirty);
  void reduce();

  struct Change {
    SegmentId seg;
    double wmin;
  };

  const RoadGraph& g_;
  BetweennessOptions opts_;
  std::vector<double> weights_;
  std::size_t num_chunks_;
  /// Grow-only update_weights scratch: a no-op refresh (all weights
  /// bit-equal) allocates nothing once warmed.
  std::vector<Change> changes_;
  /// partials_[chunk][segment]: the chunk's unscaled accumulation.
  std::vector<std::vector<double>> partials_;
  /// dists_[source][node]: distances of the cached pass from `source`.
  std::vector<std::vector<double>> dists_;
  std::vector<double> centrality_;
  ThreadPool pool_;
};

}  // namespace avcp::roadnet
