#include "roadnet/betweenness.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <thread>

#include "common/contracts.h"
#include "common/thread_pool.h"

namespace avcp::roadnet {

namespace {

double edge_weight(const RoadGraph& g, SegmentId s, PathMetric metric) {
  switch (metric) {
    case PathMetric::kHops:
      return 1.0;
    case PathMetric::kDistance:
      return g.segment(s).length_m;
    case PathMetric::kTravelTime:
      return g.segment(s).travel_time_s();
  }
  return 1.0;
}

/// One Brandes accumulation pass from `source`, adding each segment's
/// pair-dependency into `centrality`. An empty `weights` span selects the
/// unweighted BFS path (the kHops metric); otherwise weights[segment] is
/// the segment's traversal cost (Dijkstra). When `dist_out` is non-null the
/// pass's final distance array is moved into it (IncrementalBetweenness
/// caches it for affected-source detection).
void accumulate_from_source(const RoadGraph& g, NodeId source,
                            std::span<const double> weights,
                            std::vector<double>& centrality,
                            std::vector<double>* dist_out = nullptr) {
  const std::size_t n = g.num_intersections();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<double> sigma(n, 0.0);  // shortest-path counts
  std::vector<double> delta(n, 0.0);  // dependencies
  std::vector<std::vector<Hop>> preds(n);
  std::vector<NodeId> order;  // nodes in nondecreasing distance
  order.reserve(n);

  dist[source] = 0.0;
  sigma[source] = 1.0;

  if (weights.empty()) {
    std::queue<NodeId> frontier;
    frontier.push(source);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      order.push_back(v);
      for (const Hop& hop : g.neighbors(v)) {
        const NodeId w = hop.node;
        if (dist[w] == std::numeric_limits<double>::infinity()) {
          dist[w] = dist[v] + 1.0;
          frontier.push(w);
        }
        if (dist[w] == dist[v] + 1.0) {
          sigma[w] += sigma[v];
          preds[w].push_back(Hop{hop.segment, v});
        }
      }
    }
  } else {
    using Entry = std::pair<double, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    std::vector<bool> settled(n, false);
    heap.emplace(0.0, source);
    // Tie tolerance *relative* to the candidate distance: equal-cost paths
    // accumulated through different chains drift apart by O(eps * length),
    // so a fixed absolute window both misses ties on km-scale distance /
    // travel-time weights (drift > window) and merges genuinely distinct
    // path lengths on tiny ones. 1e-12 relative sits far above the few-ulp
    // drift of any realistic chain and far below any real length gap.
    constexpr double kTieTolRel = 1e-12;
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (settled[v]) continue;
      settled[v] = true;
      order.push_back(v);
      for (const Hop& hop : g.neighbors(v)) {
        const NodeId w = hop.node;
        const double nd = d + weights[hop.segment];
        const double tol = kTieTolRel * nd;  // dist[w] may be +inf
        if (nd < dist[w] - tol) {
          dist[w] = nd;
          sigma[w] = sigma[v];
          preds[w].assign(1, Hop{hop.segment, v});
          heap.emplace(nd, w);
        } else if (std::abs(nd - dist[w]) <= tol && !settled[w]) {
          sigma[w] += sigma[v];
          preds[w].push_back(Hop{hop.segment, v});
        }
      }
    }
  }

  // Back-propagate dependencies in reverse settle order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId w = *it;
    for (const Hop& pred : preds[w]) {
      const double share = sigma[pred.node] / sigma[w] * (1.0 + delta[w]);
      centrality[pred.segment] += share;
      delta[pred.node] += share;
    }
  }
  if (dist_out != nullptr) *dist_out = std::move(dist);
}

/// Per-segment traversal cost vector for a metric; empty for kHops (which
/// runs the BFS path). Hoisting the weights out of the per-source loop
/// computes each segment's cost once instead of per (source, visit) — the
/// values are identical doubles, so results are unchanged bit for bit.
std::vector<double> metric_weights(const RoadGraph& g, PathMetric metric) {
  std::vector<double> weights;
  if (metric == PathMetric::kHops) return weights;
  weights.resize(g.num_segments());
  for (SegmentId s = 0; s < g.num_segments(); ++s) {
    weights[s] = edge_weight(g, s, metric);
  }
  return weights;
}

/// Chunk partition shared by the batch and incremental paths: boundaries
/// depend only on the source count, never the thread count.
constexpr std::size_t kMaxChunks = 64;

std::size_t chunk_count(std::size_t num_sources) {
  return std::min<std::size_t>(kMaxChunks, std::max<std::size_t>(1, num_sources));
}

/// Normalization factor shared by every entry point. Undirected graph: each
/// pair (s, t) is visited from both endpoints.
double norm_factor(const RoadGraph& g, const BetweennessOptions& opts) {
  double norm = 2.0;
  if (opts.normalize) {
    const auto n = static_cast<double>(g.num_intersections());
    if (n > 2.0) norm *= (n - 1.0) * (n - 2.0);
  }
  return norm;
}

std::vector<double> betweenness_from_sources(
    const RoadGraph& g, std::span<const NodeId> sources, double scale,
    const BetweennessOptions& opts, std::span<const double> weights) {
  std::size_t num_threads = opts.num_threads;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, std::max<std::size_t>(1, sources.size()));

  // Sources are split into contiguous chunks whose boundaries depend only
  // on the source count — never on the thread count — and each chunk
  // accumulates its own partial in source order. The partials are then
  // reduced on this thread in chunk order, so the floating-point summation
  // order (and therefore the returned centrality, bit for bit) is invariant
  // to how many threads ran the chunks. The old strided partition re-split
  // the sum by thread count, so the default (hardware_concurrency) gave
  // different last-ulp results on different machines.
  const std::size_t num_chunks = chunk_count(sources.size());
  std::vector<std::vector<double>> partials(
      num_chunks, std::vector<double>(g.num_segments(), 0.0));
  ThreadPool pool(num_threads);
  pool.parallel_for(0, num_chunks, [&](std::size_t c) {
    const std::size_t begin = sources.size() * c / num_chunks;
    const std::size_t end = sources.size() * (c + 1) / num_chunks;
    for (std::size_t s = begin; s < end; ++s) {
      accumulate_from_source(g, sources[s], weights, partials[c]);
    }
  });
  std::vector<double> centrality(g.num_segments(), 0.0);
  for (const auto& partial : partials) {
    for (std::size_t i = 0; i < centrality.size(); ++i) {
      centrality[i] += partial[i];
    }
  }
  const double norm = norm_factor(g, opts);
  for (double& c : centrality) c = c * scale / norm;
  return centrality;
}

void check_weights(const RoadGraph& g, std::span<const double> weights) {
  AVCP_EXPECT(weights.size() == g.num_segments());
  for (const double w : weights) {
    AVCP_EXPECT(std::isfinite(w) && w > 0.0);
  }
}

}  // namespace

std::vector<double> segment_betweenness(const RoadGraph& g,
                                        const BetweennessOptions& opts) {
  AVCP_EXPECT(g.finalized());
  std::vector<NodeId> sources(g.num_intersections());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    sources[i] = static_cast<NodeId>(i);
  }
  const std::vector<double> weights = metric_weights(g, opts.metric);
  return betweenness_from_sources(g, sources, 1.0, opts, weights);
}

std::vector<double> sampled_segment_betweenness(
    const RoadGraph& g, std::size_t num_sources, Rng& rng,
    const BetweennessOptions& opts) {
  AVCP_EXPECT(g.finalized());
  AVCP_EXPECT(num_sources >= 1);
  const std::size_t n = g.num_intersections();
  num_sources = std::min(num_sources, n);

  // Sample sources without replacement (partial Fisher-Yates).
  std::vector<NodeId> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = static_cast<NodeId>(i);
  for (std::size_t i = 0; i < num_sources; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(num_sources);

  const double scale =
      static_cast<double>(n) / static_cast<double>(num_sources);
  const std::vector<double> weights = metric_weights(g, opts.metric);
  return betweenness_from_sources(g, pool, scale, opts, weights);
}

std::vector<double> segment_betweenness_weighted(
    const RoadGraph& g, std::span<const double> weights,
    const BetweennessOptions& opts) {
  AVCP_EXPECT(g.finalized());
  check_weights(g, weights);
  std::vector<NodeId> sources(g.num_intersections());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    sources[i] = static_cast<NodeId>(i);
  }
  return betweenness_from_sources(g, sources, 1.0, opts, weights);
}

IncrementalBetweenness::IncrementalBetweenness(const RoadGraph& g,
                                               std::vector<double> weights,
                                               BetweennessOptions opts)
    : g_(g),
      opts_(opts),
      weights_(std::move(weights)),
      num_chunks_(chunk_count(g.num_intersections())),
      partials_(num_chunks_),
      dists_(g.num_intersections()),
      centrality_(g.num_segments(), 0.0),
      pool_(std::min<std::size_t>(
          ThreadPool::clamped_lanes(opts.num_threads),
          std::max<std::size_t>(1, g.num_intersections()))) {
  AVCP_EXPECT(g_.finalized());
  AVCP_EXPECT(g_.num_intersections() >= 1);
  check_weights(g_, weights_);
  const std::vector<std::uint8_t> all_dirty(num_chunks_, 1);
  recompute_chunks(all_dirty);
  reduce();
}

IncrementalBetweenness::UpdateStats IncrementalBetweenness::update_weights(
    std::span<const SegmentId> segments, std::span<const double> new_weights) {
  AVCP_EXPECT(segments.size() == new_weights.size());

  // Apply sequentially so later duplicates win, capturing min(old, new) per
  // applied change: a source unaffected by every individual change (no
  // counted path could shorten or be joined) has bit-identical distances
  // after each one in turn, so the per-change test composes over the batch.
  std::vector<Change>& changes = changes_;
  changes.clear();
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const SegmentId s = segments[i];
    AVCP_EXPECT(s < g_.num_segments());
    const double w = new_weights[i];
    AVCP_EXPECT(std::isfinite(w) && w > 0.0);
    const double old = weights_[s];
    if (std::bit_cast<std::uint64_t>(old) == std::bit_cast<std::uint64_t>(w)) {
      continue;
    }
    changes.push_back({s, std::min(old, w)});
    weights_[s] = w;
  }

  UpdateStats stats;
  stats.segments_changed = changes.size();
  if (changes.empty()) return stats;

  // Conservative affected-source test against the cached distances. The
  // window is deliberately wider than the Dijkstra tie tolerance (1e-12
  // relative): a borderline source recomputes needlessly, but a source
  // skipped here provably contributed the same partial.
  constexpr double kAffectTolRel = 1e-9;
  const std::size_t n = g_.num_intersections();
  std::vector<std::uint8_t> affected(n, 0);
  for (std::size_t src = 0; src < n; ++src) {
    const std::vector<double>& dist = dists_[src];
    for (const Change& ch : changes) {
      const RoadSegment& seg = g_.segment(ch.seg);
      const double da = dist[seg.from];
      const double db = dist[seg.to];
      const double lo = std::min(da, db);
      if (lo == std::numeric_limits<double>::infinity()) continue;
      const double hi = std::max(da, db);
      const double cand = lo + ch.wmin;
      if (cand <= hi + kAffectTolRel * std::max(std::abs(hi), cand)) {
        affected[src] = 1;
        break;
      }
    }
  }

  std::vector<std::uint8_t> dirty(num_chunks_, 0);
  for (std::size_t c = 0; c < num_chunks_; ++c) {
    const std::size_t begin = n * c / num_chunks_;
    const std::size_t end = n * (c + 1) / num_chunks_;
    for (std::size_t s = begin; s < end; ++s) {
      if (affected[s] != 0) {
        dirty[c] = 1;
        break;
      }
    }
  }
  for (std::size_t s = 0; s < n; ++s) {
    stats.sources_affected += affected[s];
  }
  for (std::size_t c = 0; c < num_chunks_; ++c) {
    stats.chunks_recomputed += dirty[c];
  }
  if (stats.chunks_recomputed == 0) return stats;

  recompute_chunks(dirty);
  reduce();
  return stats;
}

void IncrementalBetweenness::recompute_chunks(
    const std::vector<std::uint8_t>& dirty) {
  const std::size_t n = g_.num_intersections();
  pool_.parallel_for(0, num_chunks_, [&](std::size_t c) {
    if (dirty[c] == 0) return;
    std::vector<double>& partial = partials_[c];
    partial.assign(g_.num_segments(), 0.0);
    const std::size_t begin = n * c / num_chunks_;
    const std::size_t end = n * (c + 1) / num_chunks_;
    for (std::size_t s = begin; s < end; ++s) {
      accumulate_from_source(g_, static_cast<NodeId>(s), weights_, partial,
                             &dists_[s]);
    }
  });
}

void IncrementalBetweenness::reduce() {
  // Same reduction and normalization order as betweenness_from_sources with
  // scale = 1.0, so the result is bit-equal to the from-scratch path.
  std::fill(centrality_.begin(), centrality_.end(), 0.0);
  for (const auto& partial : partials_) {
    for (std::size_t i = 0; i < centrality_.size(); ++i) {
      centrality_[i] += partial[i];
    }
  }
  const double norm = norm_factor(g_, opts_);
  for (double& c : centrality_) c = c * 1.0 / norm;
}

}  // namespace avcp::roadnet
