#include "roadnet/betweenness.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <thread>

#include "common/contracts.h"
#include "common/thread_pool.h"

namespace avcp::roadnet {

namespace {

double edge_weight(const RoadGraph& g, SegmentId s, PathMetric metric) {
  switch (metric) {
    case PathMetric::kHops:
      return 1.0;
    case PathMetric::kDistance:
      return g.segment(s).length_m;
    case PathMetric::kTravelTime:
      return g.segment(s).travel_time_s();
  }
  return 1.0;
}

/// One Brandes accumulation pass from `source`, adding each segment's
/// pair-dependency into `centrality`.
void accumulate_from_source(const RoadGraph& g, NodeId source,
                            PathMetric metric,
                            std::vector<double>& centrality) {
  const std::size_t n = g.num_intersections();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<double> sigma(n, 0.0);  // shortest-path counts
  std::vector<double> delta(n, 0.0);  // dependencies
  std::vector<std::vector<Hop>> preds(n);
  std::vector<NodeId> order;  // nodes in nondecreasing distance
  order.reserve(n);

  dist[source] = 0.0;
  sigma[source] = 1.0;

  if (metric == PathMetric::kHops) {
    std::queue<NodeId> frontier;
    frontier.push(source);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      order.push_back(v);
      for (const Hop& hop : g.neighbors(v)) {
        const NodeId w = hop.node;
        if (dist[w] == std::numeric_limits<double>::infinity()) {
          dist[w] = dist[v] + 1.0;
          frontier.push(w);
        }
        if (dist[w] == dist[v] + 1.0) {
          sigma[w] += sigma[v];
          preds[w].push_back(Hop{hop.segment, v});
        }
      }
    }
  } else {
    using Entry = std::pair<double, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    std::vector<bool> settled(n, false);
    heap.emplace(0.0, source);
    // Tie tolerance *relative* to the candidate distance: equal-cost paths
    // accumulated through different chains drift apart by O(eps * length),
    // so a fixed absolute window both misses ties on km-scale distance /
    // travel-time weights (drift > window) and merges genuinely distinct
    // path lengths on tiny ones. 1e-12 relative sits far above the few-ulp
    // drift of any realistic chain and far below any real length gap.
    constexpr double kTieTolRel = 1e-12;
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (settled[v]) continue;
      settled[v] = true;
      order.push_back(v);
      for (const Hop& hop : g.neighbors(v)) {
        const NodeId w = hop.node;
        const double nd = d + edge_weight(g, hop.segment, metric);
        const double tol = kTieTolRel * nd;  // dist[w] may be +inf
        if (nd < dist[w] - tol) {
          dist[w] = nd;
          sigma[w] = sigma[v];
          preds[w].assign(1, Hop{hop.segment, v});
          heap.emplace(nd, w);
        } else if (std::abs(nd - dist[w]) <= tol && !settled[w]) {
          sigma[w] += sigma[v];
          preds[w].push_back(Hop{hop.segment, v});
        }
      }
    }
  }

  // Back-propagate dependencies in reverse settle order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId w = *it;
    for (const Hop& pred : preds[w]) {
      const double share = sigma[pred.node] / sigma[w] * (1.0 + delta[w]);
      centrality[pred.segment] += share;
      delta[pred.node] += share;
    }
  }
}

std::vector<double> betweenness_from_sources(
    const RoadGraph& g, std::span<const NodeId> sources, double scale,
    const BetweennessOptions& opts) {
  std::size_t num_threads = opts.num_threads;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, std::max<std::size_t>(1, sources.size()));

  // Sources are split into contiguous chunks whose boundaries depend only
  // on the source count — never on the thread count — and each chunk
  // accumulates its own partial in source order. The partials are then
  // reduced on this thread in chunk order, so the floating-point summation
  // order (and therefore the returned centrality, bit for bit) is invariant
  // to how many threads ran the chunks. The old strided partition re-split
  // the sum by thread count, so the default (hardware_concurrency) gave
  // different last-ulp results on different machines.
  constexpr std::size_t kMaxChunks = 64;
  const std::size_t num_chunks =
      std::min<std::size_t>(kMaxChunks, std::max<std::size_t>(1, sources.size()));
  std::vector<std::vector<double>> partials(
      num_chunks, std::vector<double>(g.num_segments(), 0.0));
  ThreadPool pool(num_threads);
  pool.parallel_for(0, num_chunks, [&](std::size_t c) {
    const std::size_t begin = sources.size() * c / num_chunks;
    const std::size_t end = sources.size() * (c + 1) / num_chunks;
    for (std::size_t s = begin; s < end; ++s) {
      accumulate_from_source(g, sources[s], opts.metric, partials[c]);
    }
  });
  std::vector<double> centrality(g.num_segments(), 0.0);
  for (const auto& partial : partials) {
    for (std::size_t i = 0; i < centrality.size(); ++i) {
      centrality[i] += partial[i];
    }
  }
  // Undirected graph: each pair (s, t) is visited from both endpoints.
  double norm = 2.0;
  if (opts.normalize) {
    const auto n = static_cast<double>(g.num_intersections());
    if (n > 2.0) norm *= (n - 1.0) * (n - 2.0);
  }
  for (double& c : centrality) c = c * scale / norm;
  return centrality;
}

}  // namespace

std::vector<double> segment_betweenness(const RoadGraph& g,
                                        const BetweennessOptions& opts) {
  AVCP_EXPECT(g.finalized());
  std::vector<NodeId> sources(g.num_intersections());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    sources[i] = static_cast<NodeId>(i);
  }
  return betweenness_from_sources(g, sources, 1.0, opts);
}

std::vector<double> sampled_segment_betweenness(
    const RoadGraph& g, std::size_t num_sources, Rng& rng,
    const BetweennessOptions& opts) {
  AVCP_EXPECT(g.finalized());
  AVCP_EXPECT(num_sources >= 1);
  const std::size_t n = g.num_intersections();
  num_sources = std::min(num_sources, n);

  // Sample sources without replacement (partial Fisher-Yates).
  std::vector<NodeId> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = static_cast<NodeId>(i);
  for (std::size_t i = 0; i < num_sources; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(num_sources);

  const double scale =
      static_cast<double>(n) / static_cast<double>(num_sources);
  return betweenness_from_sources(g, pool, scale, opts);
}

}  // namespace avcp::roadnet
