// Road-network graph.
//
// The network is modelled as intersections (nodes) joined by road segments
// (undirected edges). The paper's analyses operate on *segments*: Eq. (2)
// assigns betweenness centrality to segments, Eq. (3) counts vehicles per
// segment, and Algorithm 1 clusters segments. RoadGraph therefore exposes
// both views: node adjacency for routing and a segment adjacency (two
// segments are neighbours when they share an intersection) for clustering.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/geo.h"

namespace avcp::roadnet {

using NodeId = std::uint32_t;
using SegmentId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};
inline constexpr SegmentId kInvalidSegment = ~SegmentId{0};

/// Functional class of a road segment; drives speed and trip attraction.
enum class RoadClass : std::uint8_t { kArterial = 0, kCollector = 1, kLocal = 2 };

/// Default free-flow speed per class, metres/second.
double default_speed_mps(RoadClass cls) noexcept;

/// A road segment joining two intersections.
struct RoadSegment {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double length_m = 0.0;
  double speed_mps = 0.0;
  RoadClass cls = RoadClass::kLocal;

  /// Free-flow traversal time in seconds.
  double travel_time_s() const noexcept { return length_m / speed_mps; }
};

/// Outgoing adjacency entry: the segment and the intersection it leads to.
struct Hop {
  SegmentId segment = kInvalidSegment;
  NodeId node = kInvalidNode;
};

/// An undirected road network. Build with add_* calls, then finalize() to
/// freeze the topology into CSR adjacency before querying neighbours.
class RoadGraph {
 public:
  /// Adds an intersection at the given planar position.
  NodeId add_intersection(PointM pos);

  /// Adds a segment between two existing intersections. Length is the
  /// Euclidean distance between the endpoints; speed defaults per class.
  SegmentId add_segment(NodeId from, NodeId to, RoadClass cls,
                        double speed_mps = 0.0);

  /// Freezes topology and builds adjacency indexes. Must be called once
  /// after construction and before any neighbour query.
  void finalize();

  bool finalized() const noexcept { return finalized_; }

  std::size_t num_intersections() const noexcept { return positions_.size(); }
  std::size_t num_segments() const noexcept { return segments_.size(); }

  const PointM& intersection(NodeId id) const;
  const RoadSegment& segment(SegmentId id) const;

  /// Midpoint of a segment (used to locate a segment in space).
  PointM segment_midpoint(SegmentId id) const;

  /// Segments incident to `node`, with the far endpoint of each.
  std::span<const Hop> neighbors(NodeId node) const;

  /// Segments sharing an intersection with `seg` (excluding seg itself).
  std::span<const SegmentId> segment_neighbors(SegmentId seg) const;

  /// For a segment incident to `node`, the endpoint that is not `node`.
  NodeId other_end(SegmentId seg, NodeId node) const;

  /// True if every intersection is reachable from intersection 0.
  bool is_connected() const;

 private:
  std::vector<PointM> positions_;
  std::vector<RoadSegment> segments_;
  bool finalized_ = false;

  // CSR adjacency: node -> hops.
  std::vector<std::uint32_t> node_offsets_;
  std::vector<Hop> node_adjacency_;

  // CSR adjacency: segment -> neighbouring segments.
  std::vector<std::uint32_t> seg_offsets_;
  std::vector<SegmentId> seg_adjacency_;
};

}  // namespace avcp::roadnet
