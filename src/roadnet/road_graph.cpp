#include "roadnet/road_graph.h"

#include <algorithm>
#include <queue>

#include "common/contracts.h"

namespace avcp::roadnet {

double default_speed_mps(RoadClass cls) noexcept {
  switch (cls) {
    case RoadClass::kArterial:
      return 16.7;  // ~60 km/h
    case RoadClass::kCollector:
      return 11.1;  // ~40 km/h
    case RoadClass::kLocal:
      return 8.3;  // ~30 km/h
  }
  return 8.3;
}

NodeId RoadGraph::add_intersection(PointM pos) {
  AVCP_EXPECT(!finalized_);
  positions_.push_back(pos);
  return static_cast<NodeId>(positions_.size() - 1);
}

SegmentId RoadGraph::add_segment(NodeId from, NodeId to, RoadClass cls,
                                 double speed_mps) {
  AVCP_EXPECT(!finalized_);
  AVCP_EXPECT(from < positions_.size());
  AVCP_EXPECT(to < positions_.size());
  AVCP_EXPECT(from != to);
  RoadSegment seg;
  seg.from = from;
  seg.to = to;
  seg.cls = cls;
  seg.length_m = distance_m(positions_[from], positions_[to]);
  seg.speed_mps = speed_mps > 0.0 ? speed_mps : default_speed_mps(cls);
  segments_.push_back(seg);
  return static_cast<SegmentId>(segments_.size() - 1);
}

void RoadGraph::finalize() {
  AVCP_EXPECT(!finalized_);
  const std::size_t n = positions_.size();
  const std::size_t m = segments_.size();

  // Node -> hop CSR.
  std::vector<std::uint32_t> degree(n, 0);
  for (const RoadSegment& s : segments_) {
    ++degree[s.from];
    ++degree[s.to];
  }
  node_offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    node_offsets_[i + 1] = node_offsets_[i] + degree[i];
  }
  node_adjacency_.resize(node_offsets_[n]);
  std::vector<std::uint32_t> cursor(node_offsets_.begin(),
                                    node_offsets_.end() - 1);
  for (std::size_t s = 0; s < m; ++s) {
    const auto sid = static_cast<SegmentId>(s);
    const RoadSegment& seg = segments_[s];
    node_adjacency_[cursor[seg.from]++] = Hop{sid, seg.to};
    node_adjacency_[cursor[seg.to]++] = Hop{sid, seg.from};
  }

  // Segment -> segment CSR via shared endpoints.
  std::vector<std::vector<SegmentId>> seg_nbrs(m);
  for (std::size_t v = 0; v < n; ++v) {
    const auto begin = node_offsets_[v];
    const auto end = node_offsets_[v + 1];
    for (auto i = begin; i < end; ++i) {
      for (auto j = begin; j < end; ++j) {
        if (i == j) continue;
        seg_nbrs[node_adjacency_[i].segment].push_back(
            node_adjacency_[j].segment);
      }
    }
  }
  seg_offsets_.assign(m + 1, 0);
  for (std::size_t s = 0; s < m; ++s) {
    auto& nbrs = seg_nbrs[s];
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    seg_offsets_[s + 1] =
        seg_offsets_[s] + static_cast<std::uint32_t>(nbrs.size());
  }
  seg_adjacency_.resize(seg_offsets_[m]);
  for (std::size_t s = 0; s < m; ++s) {
    std::copy(seg_nbrs[s].begin(), seg_nbrs[s].end(),
              seg_adjacency_.begin() + seg_offsets_[s]);
  }

  finalized_ = true;
}

const PointM& RoadGraph::intersection(NodeId id) const {
  AVCP_EXPECT(id < positions_.size());
  return positions_[id];
}

const RoadSegment& RoadGraph::segment(SegmentId id) const {
  AVCP_EXPECT(id < segments_.size());
  return segments_[id];
}

PointM RoadGraph::segment_midpoint(SegmentId id) const {
  const RoadSegment& s = segment(id);
  const PointM& a = positions_[s.from];
  const PointM& b = positions_[s.to];
  return PointM{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
}

std::span<const Hop> RoadGraph::neighbors(NodeId node) const {
  AVCP_EXPECT(finalized_);
  AVCP_EXPECT(node < positions_.size());
  return {node_adjacency_.data() + node_offsets_[node],
          node_adjacency_.data() + node_offsets_[node + 1]};
}

std::span<const SegmentId> RoadGraph::segment_neighbors(SegmentId seg) const {
  AVCP_EXPECT(finalized_);
  AVCP_EXPECT(seg < segments_.size());
  return {seg_adjacency_.data() + seg_offsets_[seg],
          seg_adjacency_.data() + seg_offsets_[seg + 1]};
}

NodeId RoadGraph::other_end(SegmentId seg, NodeId node) const {
  const RoadSegment& s = segment(seg);
  AVCP_EXPECT(s.from == node || s.to == node);
  return s.from == node ? s.to : s.from;
}

bool RoadGraph::is_connected() const {
  AVCP_EXPECT(finalized_);
  if (positions_.empty()) return true;
  std::vector<bool> seen(positions_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (const Hop& hop : neighbors(v)) {
      if (!seen[hop.node]) {
        seen[hop.node] = true;
        ++visited;
        frontier.push(hop.node);
      }
    }
  }
  return visited == positions_.size();
}

}  // namespace avcp::roadnet
