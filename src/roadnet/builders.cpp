#include "roadnet/builders.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/contracts.h"

namespace avcp::roadnet {

namespace {

/// Union-find used to guarantee pruning keeps the network connected.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n), rank_(n, 0) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
};

RoadClass classify_line(std::uint32_t index, const CityParams& p) {
  if (p.arterial_period > 0 && index % p.arterial_period == 0) {
    return RoadClass::kArterial;
  }
  if (p.collector_period > 0 && index % p.collector_period == 0) {
    return RoadClass::kCollector;
  }
  return RoadClass::kLocal;
}

/// The class of a grid edge is the best (smallest enum) of the classes of
/// the row/column line it lies on.
RoadClass edge_class(RoadClass line_cls) { return line_cls; }

struct CandidateEdge {
  NodeId a;
  NodeId b;
  RoadClass cls;
};

}  // namespace

RoadGraph build_city(const CityParams& p) {
  AVCP_EXPECT(p.rows >= 2 && p.cols >= 2);
  AVCP_EXPECT(p.spacing_m > 0.0);
  AVCP_EXPECT(p.local_prune_frac >= 0.0 && p.local_prune_frac < 1.0);

  Rng rng(p.seed);
  RoadGraph g;

  // Intersections on a jittered grid.
  std::vector<NodeId> ids(static_cast<std::size_t>(p.rows) * p.cols);
  for (std::uint32_t r = 0; r < p.rows; ++r) {
    for (std::uint32_t c = 0; c < p.cols; ++c) {
      const double jx = p.jitter_frac * p.spacing_m * rng.uniform(-1.0, 1.0);
      const double jy = p.jitter_frac * p.spacing_m * rng.uniform(-1.0, 1.0);
      const PointM pos{c * p.spacing_m + jx, r * p.spacing_m + jy};
      ids[static_cast<std::size_t>(r) * p.cols + c] = g.add_intersection(pos);
    }
  }
  const auto node_at = [&](std::uint32_t r, std::uint32_t c) {
    return ids[static_cast<std::size_t>(r) * p.cols + c];
  };

  // Candidate edges: horizontal edges inherit the row class, vertical edges
  // the column class.
  std::vector<CandidateEdge> candidates;
  candidates.reserve(2 * static_cast<std::size_t>(p.rows) * p.cols);
  for (std::uint32_t r = 0; r < p.rows; ++r) {
    const RoadClass row_cls = classify_line(r, p);
    for (std::uint32_t c = 0; c + 1 < p.cols; ++c) {
      candidates.push_back(
          {node_at(r, c), node_at(r, c + 1), edge_class(row_cls)});
    }
  }
  for (std::uint32_t c = 0; c < p.cols; ++c) {
    const RoadClass col_cls = classify_line(c, p);
    for (std::uint32_t r = 0; r + 1 < p.rows; ++r) {
      candidates.push_back(
          {node_at(r, c), node_at(r + 1, c), edge_class(col_cls)});
    }
  }

  // Prune local edges. A spanning structure over all candidates is fixed
  // first so connectivity survives; arterials and collectors always stay.
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  DisjointSet components(ids.size());
  std::vector<bool> keep(candidates.size(), false);

  // Pass 1: non-local edges are always kept.
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].cls != RoadClass::kLocal) {
      keep[i] = true;
      components.unite(candidates[i].a, candidates[i].b);
    }
  }
  // Pass 2: local edges — keep those needed for connectivity, then keep the
  // remainder with probability (1 - prune_frac).
  for (const std::size_t i : order) {
    if (candidates[i].cls != RoadClass::kLocal) continue;
    if (components.unite(candidates[i].a, candidates[i].b)) {
      keep[i] = true;
    } else if (!rng.bernoulli(p.local_prune_frac)) {
      keep[i] = true;
    }
  }

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (keep[i]) {
      g.add_segment(candidates[i].a, candidates[i].b, candidates[i].cls);
    }
  }

  g.finalize();
  AVCP_ENSURE(g.is_connected());
  return g;
}

RoadGraph make_grid(std::uint32_t rows, std::uint32_t cols, double spacing_m) {
  AVCP_EXPECT(rows >= 1 && cols >= 1);
  RoadGraph g;
  std::vector<NodeId> ids(static_cast<std::size_t>(rows) * cols);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      ids[static_cast<std::size_t>(r) * cols + c] =
          g.add_intersection(PointM{c * spacing_m, r * spacing_m});
    }
  }
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const NodeId here = ids[static_cast<std::size_t>(r) * cols + c];
      if (c + 1 < cols) {
        g.add_segment(here, ids[static_cast<std::size_t>(r) * cols + c + 1],
                      RoadClass::kLocal);
      }
      if (r + 1 < rows) {
        g.add_segment(here, ids[(static_cast<std::size_t>(r) + 1) * cols + c],
                      RoadClass::kLocal);
      }
    }
  }
  g.finalize();
  return g;
}

RoadGraph make_line(std::uint32_t n, double spacing_m) {
  AVCP_EXPECT(n >= 2);
  RoadGraph g;
  NodeId prev = g.add_intersection(PointM{0.0, 0.0});
  for (std::uint32_t i = 1; i < n; ++i) {
    const NodeId next = g.add_intersection(PointM{i * spacing_m, 0.0});
    g.add_segment(prev, next, RoadClass::kLocal);
    prev = next;
  }
  g.finalize();
  return g;
}

RoadGraph make_ring(std::uint32_t n, double radius_m) {
  AVCP_EXPECT(n >= 3);
  RoadGraph g;
  std::vector<NodeId> ids(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const double angle = 2.0 * std::numbers::pi * i / n;
    ids[i] = g.add_intersection(
        PointM{radius_m * std::cos(angle), radius_m * std::sin(angle)});
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    g.add_segment(ids[i], ids[(i + 1) % n], RoadClass::kLocal);
  }
  g.finalize();
  return g;
}

}  // namespace avcp::roadnet
