// Shortest-path routing over the road network.
//
// Used by the trace generator (vehicles drive shortest-travel-time routes
// between sampled origin/destination intersections) and by tests as the
// brute-force oracle for betweenness centrality.
#pragma once

#include <optional>
#include <vector>

#include "roadnet/betweenness.h"
#include "roadnet/road_graph.h"

namespace avcp::roadnet {

/// A route: the intersections visited and the segments traversed
/// (segments.size() == nodes.size() - 1).
struct Route {
  std::vector<NodeId> nodes;
  std::vector<SegmentId> segments;
  double cost = 0.0;  // total metric cost (hops, metres, or seconds)

  bool empty() const noexcept { return nodes.empty(); }
};

/// Single-pair shortest path; nullopt when `to` is unreachable from `from`.
std::optional<Route> shortest_path(const RoadGraph& g, NodeId from, NodeId to,
                                   PathMetric metric = PathMetric::kTravelTime);

/// Single-source costs to every intersection (infinity if unreachable).
std::vector<double> shortest_costs(const RoadGraph& g, NodeId from,
                                   PathMetric metric = PathMetric::kTravelTime);

}  // namespace avcp::roadnet
