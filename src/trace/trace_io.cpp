#include "trace/trace_io.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <string>

#include "common/contracts.h"
#include "common/csv.h"

namespace avcp::trace {

namespace {

double parse_double(const std::string& s) {
  double value = 0.0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  AVCP_EXPECT(ec == std::errc{} && ptr == end);
  return value;
}

std::uint32_t parse_u32(const std::string& s) {
  std::uint32_t value = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  AVCP_EXPECT(ec == std::errc{} && ptr == end);
  return value;
}

}  // namespace

void write_trace_csv(std::ostream& out, const std::vector<GpsFix>& fixes) {
  CsvWriter writer(out);
  writer.write_row({"vehicle", "time_s", "x_m", "y_m", "speed_mps", "segment"});
  for (const GpsFix& fix : fixes) {
    writer.write_row({std::to_string(fix.vehicle), std::to_string(fix.time_s),
                      std::to_string(fix.pos.x), std::to_string(fix.pos.y),
                      std::to_string(fix.speed_mps),
                      std::to_string(fix.segment)});
  }
}

std::vector<GpsFix> read_trace_csv(std::istream& in) {
  const auto rows = read_csv(in);
  std::vector<GpsFix> fixes;
  if (rows.empty()) return fixes;
  fixes.reserve(rows.size() - 1);
  for (std::size_t i = 1; i < rows.size(); ++i) {  // row 0 is the header
    const auto& row = rows[i];
    AVCP_EXPECT(row.size() == 6);
    GpsFix fix;
    fix.vehicle = parse_u32(row[0]);
    fix.time_s = parse_double(row[1]);
    fix.pos = PointM{parse_double(row[2]), parse_double(row[3])};
    fix.speed_mps = parse_double(row[4]);
    fix.segment = parse_u32(row[5]);
    fixes.push_back(fix);
  }
  return fixes;
}

}  // namespace avcp::trace
