// CSV interchange for vehicle traces.
//
// Format (one fix per row, header included):
//   vehicle,time_s,x_m,y_m,speed_mps,segment
// Matches the information content of the Shenzhen dataset rows (id,
// timestamp, GPS position, velocity) plus the matched segment.
#pragma once

#include <iosfwd>
#include <vector>

#include "trace/types.h"

namespace avcp::trace {

/// Writes fixes with a header row.
void write_trace_csv(std::ostream& out, const std::vector<GpsFix>& fixes);

/// Reads fixes; throws ContractViolation on malformed rows.
std::vector<GpsFix> read_trace_csv(std::istream& in);

}  // namespace avcp::trace
