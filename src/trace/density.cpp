#include "trace/density.h"

#include <cmath>

#include "common/contracts.h"

namespace avcp::trace {

TrafficDensityAccumulator::TrafficDensityAccumulator(std::size_t num_segments,
                                                     double window_s,
                                                     double duration_s)
    : num_segments_(num_segments), window_s_(window_s) {
  AVCP_EXPECT(num_segments > 0);
  AVCP_EXPECT(window_s > 0.0);
  AVCP_EXPECT(duration_s > 0.0);
  const auto windows =
      static_cast<std::size_t>(std::ceil(duration_s / window_s));
  counts_.assign(windows, std::vector<std::uint32_t>(num_segments, 0));
}

void TrafficDensityAccumulator::add(const GpsFix& fix) {
  AVCP_EXPECT(fix.segment < num_segments_);
  AVCP_EXPECT(fix.time_s >= 0.0);
  const auto window = static_cast<std::size_t>(fix.time_s / window_s_);
  if (window >= counts_.size()) return;  // beyond the configured span

  LastSeen& last = last_seen_[fix.vehicle];
  if (last.window == window && last.segment == fix.segment) return;
  last.window = window;
  last.segment = fix.segment;
  ++counts_[window][fix.segment];
}

std::uint32_t TrafficDensityAccumulator::count(
    std::size_t window, roadnet::SegmentId segment) const {
  AVCP_EXPECT(window < counts_.size());
  AVCP_EXPECT(segment < num_segments_);
  return counts_[window][segment];
}

double TrafficDensityAccumulator::density(std::size_t window,
                                          roadnet::SegmentId segment) const {
  return static_cast<double>(count(window, segment)) / window_s_;
}

std::vector<double> TrafficDensityAccumulator::average_density() const {
  std::vector<double> avg(num_segments_, 0.0);
  if (counts_.empty()) return avg;
  for (const auto& window : counts_) {
    for (std::size_t s = 0; s < num_segments_; ++s) {
      avg[s] += static_cast<double>(window[s]);
    }
  }
  const double total_time = window_s_ * static_cast<double>(counts_.size());
  for (double& v : avg) v /= total_time;
  return avg;
}

std::vector<std::uint32_t> TrafficDensityAccumulator::total_counts() const {
  std::vector<std::uint32_t> totals(num_segments_, 0);
  for (const auto& window : counts_) {
    for (std::size_t s = 0; s < num_segments_; ++s) totals[s] += window[s];
  }
  return totals;
}

}  // namespace avcp::trace
