// Vehicle trace types.
//
// A trace is a stream of GPS fixes, one per vehicle per reporting interval
// (the paper's vehicles report every 10 seconds). Fixes carry the road
// segment the vehicle occupies so downstream consumers (traffic density,
// region assignment, data-sharing frequency) need no map matching; the
// spatial library still provides snapping for externally-loaded traces.
#pragma once

#include <cstdint>

#include "common/geo.h"
#include "roadnet/road_graph.h"

namespace avcp::trace {

using VehicleId = std::uint32_t;

/// One GPS report.
struct GpsFix {
  VehicleId vehicle = 0;
  double time_s = 0.0;
  PointM pos;
  double speed_mps = 0.0;
  roadnet::SegmentId segment = roadnet::kInvalidSegment;
};

}  // namespace avcp::trace
