// Synthetic vehicle trace generation.
//
// Substitutes for the Shenzhen taxi/transit GPS dataset (DESIGN.md §1).
// Each vehicle alternates between dwelling and driving trips: destinations
// are sampled with attraction proportional to the road hierarchy around an
// intersection (arterials attract more trips, reproducing the heavy-tailed
// per-segment traffic the paper's TD clustering depends on), routes follow
// shortest travel time, and a GPS fix is emitted every `fix_interval_s`.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "roadnet/road_graph.h"
#include "trace/types.h"

namespace avcp::trace {

/// Trace-generation parameters.
struct TraceParams {
  std::uint32_t num_vehicles = 500;
  double duration_s = 4 * 3600.0;  // simulated span
  double fix_interval_s = 10.0;    // paper: vehicles report every 10 s
  /// Mean dwell between trips, seconds (exponential).
  double mean_dwell_s = 300.0;
  /// Per-vehicle speed factor is drawn uniformly from this range and
  /// multiplies segment free-flow speed.
  double speed_factor_lo = 0.7;
  double speed_factor_hi = 1.1;
  /// Trip-attraction weight per road class incident to an intersection.
  double arterial_weight = 4.0;
  double collector_weight = 2.0;
  double local_weight = 1.0;
  std::uint64_t seed = 7;
};

/// Streaming sink for generated fixes. Fixes for a given vehicle arrive in
/// nondecreasing time order; vehicles are generated one after another.
using FixSink = std::function<void(const GpsFix&)>;

class TraceGenerator {
 public:
  /// The road graph must be finalized and outlive the generator.
  TraceGenerator(const roadnet::RoadGraph& graph, TraceParams params);

  /// Generates the full trace into a sink (constant memory).
  void generate(const FixSink& sink) const;

  /// Convenience: materialises the whole trace, ordered by vehicle then time.
  std::vector<GpsFix> generate_all() const;

  /// Trip-attraction weight of each intersection (exposed for tests).
  const std::vector<double>& attraction() const noexcept { return attraction_; }

 private:
  const roadnet::RoadGraph& graph_;
  TraceParams params_;
  std::vector<double> attraction_;

  void generate_vehicle(VehicleId id, Rng& rng, const FixSink& sink) const;
};

}  // namespace avcp::trace
