// Traffic density (Eq. (3)): vehicles traversing each road segment per
// time window.
//
// TD_i = (# vehicles travelling through u_i during [t_s, t_e)) / (t_e - t_s).
//
// The accumulator is streaming: it consumes fixes in any vehicle
// interleaving as long as each individual vehicle's fixes arrive in time
// order (what TraceGenerator produces). A vehicle is counted once per
// contiguous stay in a (segment, window); leaving and re-entering within the
// same window counts again, matching the "travelling through" semantics.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/types.h"

namespace avcp::trace {

class TrafficDensityAccumulator {
 public:
  /// `num_segments` sizes the per-window counters; `window_s` is the
  /// aggregation window (the paper uses 10 minutes); `duration_s` bounds
  /// the trace span.
  TrafficDensityAccumulator(std::size_t num_segments, double window_s,
                            double duration_s);

  /// Consumes one fix. Fixes of the same vehicle must be time-ordered.
  void add(const GpsFix& fix);

  std::size_t num_windows() const noexcept { return counts_.size(); }
  std::size_t num_segments() const noexcept { return num_segments_; }
  double window_s() const noexcept { return window_s_; }

  /// Raw traversal count of `segment` in `window`.
  std::uint32_t count(std::size_t window, roadnet::SegmentId segment) const;

  /// TD of one segment in one window: count / window length (vehicles/s).
  double density(std::size_t window, roadnet::SegmentId segment) const;

  /// Per-segment TD averaged over all windows — the utility-coefficient
  /// input for TD-based clustering (paper §V-A averages TD over one day).
  std::vector<double> average_density() const;

  /// Per-segment total traversal counts over the whole trace.
  std::vector<std::uint32_t> total_counts() const;

 private:
  struct LastSeen {
    std::size_t window = ~std::size_t{0};
    roadnet::SegmentId segment = roadnet::kInvalidSegment;
  };

  std::size_t num_segments_;
  double window_s_;
  std::vector<std::vector<std::uint32_t>> counts_;  // [window][segment]
  std::unordered_map<VehicleId, LastSeen> last_seen_;
};

}  // namespace avcp::trace
