#include "trace/generator.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "roadnet/shortest_path.h"

namespace avcp::trace {

using roadnet::NodeId;
using roadnet::RoadClass;
using roadnet::RoadGraph;
using roadnet::SegmentId;

namespace {

double class_weight(RoadClass cls, const TraceParams& p) {
  switch (cls) {
    case RoadClass::kArterial:
      return p.arterial_weight;
    case RoadClass::kCollector:
      return p.collector_weight;
    case RoadClass::kLocal:
      return p.local_weight;
  }
  return p.local_weight;
}

PointM lerp(const PointM& a, const PointM& b, double t) {
  return PointM{a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

}  // namespace

TraceGenerator::TraceGenerator(const RoadGraph& graph, TraceParams params)
    : graph_(graph), params_(params) {
  AVCP_EXPECT(graph.finalized());
  AVCP_EXPECT(graph.num_intersections() >= 2);
  AVCP_EXPECT(params_.num_vehicles >= 1);
  AVCP_EXPECT(params_.duration_s > 0.0);
  AVCP_EXPECT(params_.fix_interval_s > 0.0);
  AVCP_EXPECT(params_.speed_factor_lo > 0.0);
  AVCP_EXPECT(params_.speed_factor_hi >= params_.speed_factor_lo);

  attraction_.resize(graph.num_intersections(), 0.0);
  for (std::size_t v = 0; v < attraction_.size(); ++v) {
    double w = 0.0;
    for (const roadnet::Hop& hop : graph.neighbors(static_cast<NodeId>(v))) {
      w += class_weight(graph.segment(hop.segment).cls, params_);
    }
    attraction_[v] = std::max(w, params_.local_weight);
  }
}

void TraceGenerator::generate(const FixSink& sink) const {
  Rng root(params_.seed);
  for (VehicleId id = 0; id < params_.num_vehicles; ++id) {
    Rng vehicle_rng = root.split();
    generate_vehicle(id, vehicle_rng, sink);
  }
}

std::vector<GpsFix> TraceGenerator::generate_all() const {
  std::vector<GpsFix> fixes;
  generate([&fixes](const GpsFix& fix) { fixes.push_back(fix); });
  return fixes;
}

void TraceGenerator::generate_vehicle(VehicleId id, Rng& rng,
                                      const FixSink& sink) const {
  const double speed_factor =
      rng.uniform(params_.speed_factor_lo, params_.speed_factor_hi);
  auto here = static_cast<NodeId>(rng.weighted_index(attraction_));

  double clock = rng.uniform(0.0, params_.fix_interval_s);  // desynchronise
  double next_fix = clock;

  while (clock < params_.duration_s) {
    // Dwell between trips: vehicle is parked, no fixes reported (the paper's
    // taxis report only while operating on the network).
    clock += rng.exponential(1.0 / params_.mean_dwell_s);
    if (clock >= params_.duration_s) break;
    // The GPS unit keeps sampling on its own cadence; skip the fixes that
    // fell inside the dwell without leaving the reporting grid.
    while (next_fix < clock) next_fix += params_.fix_interval_s;

    // Sample a destination distinct from the current node.
    NodeId dest = here;
    for (int attempt = 0; attempt < 16 && dest == here; ++attempt) {
      dest = static_cast<NodeId>(rng.weighted_index(attraction_));
    }
    if (dest == here) continue;

    const auto route = roadnet::shortest_path(graph_, here, dest,
                                              roadnet::PathMetric::kTravelTime);
    if (!route || route->segments.empty()) continue;

    // Drive the route segment by segment, emitting fixes on the global
    // fix-interval grid.
    for (std::size_t i = 0; i < route->segments.size(); ++i) {
      const SegmentId sid = route->segments[i];
      const roadnet::RoadSegment& seg = graph_.segment(sid);
      const NodeId enter_node = route->nodes[i];
      const NodeId exit_node = route->nodes[i + 1];
      const double speed = seg.speed_mps * speed_factor;
      const double seg_time = seg.length_m / speed;
      const double enter_time = clock;
      const double exit_time = clock + seg_time;

      while (next_fix < exit_time) {
        if (next_fix >= enter_time) {
          if (next_fix >= params_.duration_s) return;
          const double frac = (next_fix - enter_time) / seg_time;
          sink(GpsFix{id, next_fix,
                      lerp(graph_.intersection(enter_node),
                           graph_.intersection(exit_node), frac),
                      speed, sid});
        }
        next_fix += params_.fix_interval_s;
      }
      clock = exit_time;
      if (clock >= params_.duration_s) return;
    }
    here = dest;
  }
}

}  // namespace avcp::trace
