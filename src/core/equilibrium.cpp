#include "core/equilibrium.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace avcp::core {

InvasionReport test_pure_invasion(const MultiRegionGame& game,
                                  const GameState& state,
                                  std::span<const double> x, RegionId i,
                                  DecisionId resident, double tol) {
  AVCP_EXPECT(i < game.num_regions());
  AVCP_EXPECT(resident < game.num_decisions());

  GameState pure = state;
  std::fill(pure.p[i].begin(), pure.p[i].end(), 0.0);
  pure.p[i][resident] = 1.0;

  const double resident_fitness = game.fitness(pure, x, i, resident);
  InvasionReport report;
  report.best_invader = resident;
  report.invader_advantage = 0.0;
  for (DecisionId k = 0; k < game.num_decisions(); ++k) {
    if (k == resident) continue;
    // A rare mutant's fitness against the resident monoculture.
    const double advantage = game.fitness(pure, x, i, k) - resident_fitness;
    if (advantage > report.invader_advantage + tol) {
      report.invader_advantage = advantage;
      report.best_invader = k;
      report.stable = false;
    }
  }
  return report;
}

std::vector<DecisionId> stable_pure_decisions(const MultiRegionGame& game,
                                              const GameState& state,
                                              std::span<const double> x,
                                              RegionId i, double tol) {
  std::vector<DecisionId> stable;
  for (DecisionId k = 0; k < game.num_decisions(); ++k) {
    if (test_pure_invasion(game, state, x, i, k, tol).stable) {
      stable.push_back(k);
    }
  }
  return stable;
}

LimitResult long_run_limit(const MultiRegionGame& game, GameState start,
                           std::span<const double> x,
                           const LimitOptions& options) {
  AVCP_EXPECT(start.p.size() == game.num_regions());
  LimitResult result;
  result.state = std::move(start);
  std::size_t quiet_rounds = 0;
  for (std::size_t t = 0; t < options.max_rounds; ++t) {
    const GameState previous = result.state;
    game.replicator_step(result.state, x);
    ++result.rounds;
    double motion = 0.0;
    for (std::size_t i = 0; i < result.state.p.size(); ++i) {
      for (std::size_t k = 0; k < result.state.p[i].size(); ++k) {
        motion = std::max(motion,
                          std::abs(result.state.p[i][k] - previous.p[i][k]));
      }
    }
    if (motion < options.motion_tol) {
      if (++quiet_rounds >= options.patience) {
        result.settled = true;
        break;
      }
    } else {
      quiet_rounds = 0;
    }
  }
  return result;
}

std::vector<EquilibriumMapEntry> equilibrium_map(
    const MultiRegionGame& game, std::size_t steps,
    const LimitOptions& options) {
  AVCP_EXPECT(steps >= 2);
  std::vector<EquilibriumMapEntry> entries;
  entries.reserve(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    const double ratio =
        static_cast<double>(s) / static_cast<double>(steps - 1);
    const std::vector<double> x(game.num_regions(), ratio);
    auto limit = long_run_limit(game, game.uniform_state(), x, options);
    entries.push_back(
        EquilibriumMapEntry{ratio, std::move(limit.state), limit.settled});
  }
  return entries;
}

}  // namespace avcp::core
