// Fast Decision Shaping (paper §IV-B, Algorithm 2) and controllers.
//
// The cloud's policy-optimisation problem (Eq. (14)) — pick per-region
// sharing ratios x^t so every decision proportion p_{i,k} reaches its
// desired field P*_{i,k} as fast as possible under the smoothness bound
// |x_i^{t+1} - x_i^t| <= Lambda — is NP-hard. FDS instead relocates each
// (i, k)'s rest point: for every region it computes the set X_i of local
// ratios x_i under which the affine-rate case analysis (rate_model.h)
// drives all p_{i,k} toward their targets, then keeps x_i if admissible or
// moves it toward the nearest admissible point by at most Lambda.
//
// All case conditions are affine in x_i (RateFamily), so each per-decision
// admissible set is a union of at most two intervals and X_i is an exact
// interval-set intersection — no numeric search.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/interval.h"
#include "core/game.h"
#include "core/rate_model.h"

namespace avcp::core {

/// Desired decision fields P*_{i,k}: one closed interval per region and
/// decision. Intervals containing 1 (resp. 0) are driven via Cases 1/3
/// (resp. 2/3); interior intervals via the ESS relocation of Case 4.
class DesiredFields {
 public:
  DesiredFields(std::size_t num_regions, std::size_t num_decisions);

  /// Target for (region, decision); defaults to the whole [0, 1] (always
  /// satisfied) until set.
  const Interval& target(RegionId i, DecisionId k) const;
  void set_target(RegionId i, DecisionId k, Interval iv);

  /// Sets the same per-decision targets in every region, built from a
  /// desired distribution p* and tolerance eps: target_k = [p*_k - eps,
  /// p*_k + eps] clipped to [0, 1] (paper §V-C's acceptable error).
  static DesiredFields from_distribution(std::size_t num_regions,
                                         std::span<const double> p_star,
                                         double eps);

  std::size_t num_regions() const noexcept { return targets_.size(); }
  std::size_t num_decisions() const noexcept {
    return targets_.empty() ? 0 : targets_.front().size();
  }

  /// True if every p[i][k] lies in its target (within tol).
  bool satisfied(const GameState& state, double tol = 1e-9) const;

  /// Checkpoint hooks: the cloud retargets fields from telemetry mid-run
  /// (set_target / density_weighted_fields), so the intervals are run
  /// state. load_state rejects dimension mismatches with SerialError.
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);

 private:
  std::vector<std::vector<Interval>> targets_;
};

/// A policy controller: maps the observed state and previous ratios to the
/// next round's sharing-ratio vector (Step S1 of the framework).
class Controller {
 public:
  virtual ~Controller() = default;
  virtual std::vector<double> next_x(const GameState& state,
                                     const std::vector<double>& x_prev) = 0;

  /// Grow-only variant for steady-state loops: writes the next ratios into
  /// `out`, reusing its capacity. `out` must not alias `x_prev`. The base
  /// falls back to next_x; the in-tree controllers override it so a warmed
  /// caller-owned `out` makes the call allocation-free.
  virtual void next_x_into(const GameState& state,
                           const std::vector<double>& x_prev,
                           std::vector<double>& out) {
    out = next_x(state, x_prev);
  }
};

/// Baseline: a constant sharing ratio in every region (the x = 0.2 / 1.0
/// comparisons of Fig. 10).
class FixedRatioController final : public Controller {
 public:
  explicit FixedRatioController(double value);
  std::vector<double> next_x(const GameState& state,
                             const std::vector<double>& x_prev) override;
  void next_x_into(const GameState& state, const std::vector<double>& x_prev,
                   std::vector<double>& out) override;

 private:
  double value_;
};

struct FdsOptions {
  /// Lambda of Eq. (13): per-round cap on |x_i^{t+1} - x_i^t|.
  double max_step = 0.05;
  /// How far inside the admissible interval the controller aims. On the
  /// boundary the shaped decision's flow is exactly zero, so a ratio there
  /// stalls; the margin buys strictly positive convergence speed.
  double interior_margin = 0.1;
  /// Numeric tolerance for boundary membership tests.
  double tol = 1e-9;
  /// Update order across regions within one round. Jacobi (paper Algorithm
  /// 2): every region sees the previous round's ratios of its neighbours.
  /// Gauss-Seidel: regions update in index order and later regions see the
  /// fresh ratios — typically converges in fewer rounds on coupled graphs.
  enum class Sweep : std::uint8_t { kJacobi = 0, kGaussSeidel = 1 };
  Sweep sweep = Sweep::kJacobi;
};

class FdsController final : public Controller {
 public:
  /// `game` must outlive the controller.
  FdsController(const MultiRegionGame& game, DesiredFields desired,
                FdsOptions options = {});

  /// Admissible local-ratio set X_i^t = intersection over k of X_{i,k}^t
  /// (Algorithm 2 lines 5-11), holding other regions' ratios at x_prev.
  IntervalSet feasible_set(const GameState& state,
                           std::span<const double> x_prev, RegionId i) const;

  /// Best-effort set when the full intersection is empty: per-decision sets
  /// are intersected greedily in decreasing order of target violation, and
  /// any constraint that would empty the set is skipped. The result always
  /// contains at least the constraints of the most-violated decision, so
  /// the controller keeps making progress where Algorithm 2 would stall.
  IntervalSet prioritized_feasible_set(const GameState& state,
                                       std::span<const double> x_prev,
                                       RegionId i) const;

  /// Algorithm 2 lines 12-18 for every region (Jacobi update: each region
  /// sees the previous round's ratios of its neighbours).
  std::vector<double> next_x(const GameState& state,
                             const std::vector<double>& x_prev) override;
  void next_x_into(const GameState& state, const std::vector<double>& x_prev,
                   std::vector<double>& out) override;

  const DesiredFields& desired() const noexcept { return desired_; }

  /// Replaces the desired fields mid-run (same region/decision dimensions).
  /// The cloud recomputes targets from telemetry — e.g. density-weighted
  /// floors (byzantine::density_weighted_fields) — between rounds; the
  /// controller itself is stateless across next_x calls, so swapping the
  /// fields is the whole update.
  void set_desired(DesiredFields desired);

  /// Checkpoint hooks. next_x is a pure function of (state, x_prev) given
  /// the fields, so the fields are the controller's entire mutable state.
  void save_state(Serializer& s) const { desired_.save_state(s); }
  void load_state(Deserializer& d) { desired_.load_state(d); }

 private:
  const MultiRegionGame& game_;
  DesiredFields desired_;
  FdsOptions options_;

  IntervalSet decision_feasible_set(const GameState& state,
                                    std::span<const double> x_prev, RegionId i,
                                    DecisionId k) const;
};

}  // namespace avcp::core
