#include "core/sensor_model.h"

#include <algorithm>
#include <numeric>

#include "common/contracts.h"

namespace avcp::core {

std::span<const std::string> perception_factor_names() {
  static const std::string kNames[kNumPerceptionFactors] = {
      "Range",
      "Resolution",
      "Distance Accuracy",
      "Velocity",
      "Color perception",
      "Object detection",
      "Object classification",
      "Lane detection",
      "Obstacle edge detection",
      "Illumination conditions",
      "Weather conditions",
  };
  return kNames;
}

double SensorProfile::utility_sum() const noexcept {
  return std::accumulate(factor_scores.begin(), factor_scores.end(), 0.0);
}

std::vector<SensorProfile> paper_sensors() {
  // Columns of Table III: camera, LiDAR, radar.
  return {
      SensorProfile{"camera",
                    {0.5, 1.0, 0.5, 0.5, 1.0, 0.5, 1.0, 1.0, 1.0, 0.0, 0.0},
                    1.0},
      SensorProfile{"lidar",
                    {0.5, 0.5, 1.0, 0.0, 0.0, 1.0, 0.5, 0.0, 1.0, 1.0, 0.5},
                    0.5},
      SensorProfile{"radar",
                    {1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0},
                    0.1},
  };
}

DecisionTables make_decision_tables(const DecisionLattice& lattice,
                                    std::span<const SensorProfile> sensors) {
  AVCP_EXPECT(sensors.size() == lattice.num_sensors());
  const std::size_t k = lattice.num_decisions();

  DecisionTables tables;
  tables.raw_utility.resize(k, 0.0);
  tables.raw_privacy.resize(k, 0.0);
  for (DecisionId d = 0; d < k; ++d) {
    for (std::size_t s = 0; s < sensors.size(); ++s) {
      if (lattice.shares(d, s)) {
        tables.raw_utility[d] += sensors[s].utility_sum();
        tables.raw_privacy[d] += sensors[s].privacy_cost;
      }
    }
  }

  const double max_utility =
      *std::max_element(tables.raw_utility.begin(), tables.raw_utility.end());
  const double max_privacy =
      *std::max_element(tables.raw_privacy.begin(), tables.raw_privacy.end());
  tables.utility.resize(k);
  tables.privacy.resize(k);
  for (DecisionId d = 0; d < k; ++d) {
    tables.utility[d] =
        max_utility > 0.0 ? tables.raw_utility[d] / max_utility : 0.0;
    tables.privacy[d] =
        max_privacy > 0.0 ? tables.raw_privacy[d] / max_privacy : 0.0;
  }
  return tables;
}

DecisionTables paper_decision_tables(const DecisionLattice& lattice) {
  const auto sensors = paper_sensors();
  return make_decision_tables(lattice, sensors);
}

}  // namespace avcp::core
