// Sensor capability and privacy model (paper Tables II and III).
//
// Table III scores each sensor's contribution to 11 perception factors at
// three levels (1 = competently, 0.5 = reasonably well, 0 = doesn't operate
// well), following the sensor-fusion survey the paper cites. A decision's
// *utility* is the summed contribution of its shared sensors; its *privacy
// cost* is the summed sensitivity of its shared sensors (camera 1.0,
// LiDAR 0.5, radar 0.1). Both are then min-max normalised to [0, 1] for use
// in the fitness function (Eq. (1)/(4)).
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "core/lattice.h"

namespace avcp::core {

/// Number of perception factors in Table III.
inline constexpr std::size_t kNumPerceptionFactors = 11;

/// Factor names, in Table III order.
std::span<const std::string> perception_factor_names();

/// Per-sensor scores over the 11 factors.
struct SensorProfile {
  std::string name;
  std::array<double, kNumPerceptionFactors> factor_scores{};
  double privacy_cost = 0.0;

  /// Sum contribution to the 11 factors (Table III bottom row).
  double utility_sum() const noexcept;
};

/// The paper's three sensors with Table III scores and §V-C privacy costs
/// (camera 1.0, LiDAR 0.5, radar 0.1), in lattice declaration order
/// [camera, lidar, radar].
std::vector<SensorProfile> paper_sensors();

/// Per-decision utility f_k and privacy cost g_k.
struct DecisionTables {
  std::vector<double> utility;       // normalised f_k in [0, 1]
  std::vector<double> privacy;       // normalised g_k in [0, 1]
  std::vector<double> raw_utility;   // Table II "Utility" column
  std::vector<double> raw_privacy;   // Table II "Privacy cost" column
};

/// Builds Table II for an arbitrary lattice: raw values are additive over
/// shared sensors; normalised values divide by the maxima (attained by the
/// share-everything decision P^1).
DecisionTables make_decision_tables(const DecisionLattice& lattice,
                                    std::span<const SensorProfile> sensors);

/// Convenience: the paper's exact 8-decision tables.
DecisionTables paper_decision_tables(const DecisionLattice& lattice);

}  // namespace avcp::core
