#include "core/lattice.h"

#include <algorithm>
#include <bit>

#include "common/contracts.h"

namespace avcp::core {

DecisionLattice::DecisionLattice(std::size_t num_sensors)
    : num_sensors_(num_sensors) {
  AVCP_EXPECT(num_sensors >= 1 && num_sensors <= 16);
  const std::size_t k = std::size_t{1} << num_sensors;

  masks_.resize(k);
  for (std::size_t m = 0; m < k; ++m) {
    masks_[m] = static_cast<SensorMask>(m);
  }
  // Paper numbering: larger subsets first; ties broken by descending mask
  // value, which (with sensor 0 in the most significant bit) reproduces the
  // P1..P8 order of §III.
  std::sort(masks_.begin(), masks_.end(),
            [](SensorMask a, SensorMask b) {
              const auto ca = std::popcount(a);
              const auto cb = std::popcount(b);
              if (ca != cb) return ca > cb;
              return a > b;
            });

  of_mask_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    of_mask_[masks_[i]] = static_cast<DecisionId>(i);
  }

  accessible_eq_.resize(k);
  accessible_strict_.resize(k);
  for (DecisionId a = 0; a < k; ++a) {
    for (DecisionId b = 0; b < k; ++b) {
      const SensorMask ma = masks_[a];
      const SensorMask mb = masks_[b];
      if ((mb & ma) == mb) {  // P^b subset-or-equal P^a
        accessible_eq_[a].push_back(b);
        if (mb != ma) accessible_strict_[a].push_back(b);
      }
    }
    std::sort(accessible_eq_[a].begin(), accessible_eq_[a].end());
    std::sort(accessible_strict_[a].begin(), accessible_strict_[a].end());
  }
}

SensorMask DecisionLattice::mask(DecisionId k) const {
  AVCP_EXPECT(k < masks_.size());
  return masks_[k];
}

DecisionId DecisionLattice::decision_of(SensorMask mask) const {
  AVCP_EXPECT(mask < of_mask_.size());
  return of_mask_[mask];
}

SensorMask DecisionLattice::sensor_bit(std::size_t s) const {
  AVCP_EXPECT(s < num_sensors_);
  return SensorMask{1} << (num_sensors_ - 1 - s);
}

bool DecisionLattice::shares(DecisionId k, std::size_t s) const {
  return (mask(k) & sensor_bit(s)) != 0;
}

std::size_t DecisionLattice::cardinality(DecisionId k) const {
  return static_cast<std::size_t>(std::popcount(mask(k)));
}

bool DecisionLattice::preceq(DecisionId k, DecisionId l) const {
  const SensorMask mk = mask(k);
  const SensorMask ml = mask(l);
  return (ml & mk) == ml;
}

bool DecisionLattice::precedes(DecisionId k, DecisionId l) const {
  return preceq(k, l) && mask(k) != mask(l);
}

std::span<const DecisionId> DecisionLattice::accessible(
    DecisionId k, AccessRule rule) const {
  AVCP_EXPECT(k < masks_.size());
  return rule == AccessRule::kSubsetOrEqual ? accessible_eq_[k]
                                            : accessible_strict_[k];
}

std::vector<std::pair<DecisionId, DecisionId>> DecisionLattice::hasse_edges()
    const {
  std::vector<std::pair<DecisionId, DecisionId>> edges;
  for (DecisionId k = 0; k < masks_.size(); ++k) {
    const SensorMask mk = masks_[k];
    for (std::size_t s = 0; s < num_sensors_; ++s) {
      const SensorMask bit = sensor_bit(s);
      if (mk & bit) {
        edges.emplace_back(k, decision_of(mk & ~bit));
      }
    }
  }
  return edges;
}

std::string DecisionLattice::label(
    DecisionId k, std::span<const std::string> sensor_names) const {
  static const std::string kDefaults[] = {"cam", "lid", "rad"};
  std::string out = "P" + std::to_string(k + 1) + "{";
  bool first = true;
  for (std::size_t s = 0; s < num_sensors_; ++s) {
    if (!shares(k, s)) continue;
    if (!first) out += ",";
    first = false;
    if (s < sensor_names.size()) {
      out += sensor_names[s];
    } else if (s < 3 && num_sensors_ == 3) {
      out += kDefaults[s];
    } else {
      out += "s" + std::to_string(s);
    }
  }
  out += "}";
  return out;
}

}  // namespace avcp::core
