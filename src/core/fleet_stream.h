// Streaming fleet ingestion (DESIGN.md §16).
//
// Million-vehicle fleets must never be materialised as one flat roster
// before sharding: a FleetSource is pulled in shard-sized batches and each
// seed is routed to its shard on arrival, so peak ingestion memory is
// O(batch) above the final sharded state. The contract is deliberately
// minimal — a seed is (stable id, initial decision) — and deterministic
// sources must derive any per-vehicle randomness from the id alone (a pure
// hash stream), so the resulting fleet is independent of batch size and of
// how many pulls the consumer makes. Consumers: the sharded fleet engine
// (system/fleet_engine.h) and ServiceEngine::init_from_source.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/rng.h"
#include "core/lattice.h"

namespace avcp::core {

/// One vehicle entering the fleet: a stable identity and its initial
/// decision. Everything else (region/shard, attacker role, item sets) is
/// derived downstream from the id.
struct VehicleSeed {
  std::uint64_t id = 0;
  DecisionId decision = 0;
};

/// Pull-based source of vehicle seeds. Implementations may generate
/// synthetically, replay a trace, or proxy a live join stream; they must
/// not require the consumer to hold more than one batch at a time.
class FleetSource {
 public:
  virtual ~FleetSource() = default;

  /// Fills out[0..r) and returns r. r < out.size() signals exhaustion;
  /// after that every call returns 0.
  virtual std::size_t next_batch(std::span<VehicleSeed> out) = 0;
};

/// Synthetic source of `count` vehicles with ids [0, count) whose initial
/// decisions are drawn uniformly from [0, num_decisions) via a per-id
/// hash-derived stream — the fleet is a pure function of (count,
/// num_decisions, seed), independent of batch size.
class SyntheticFleetSource final : public FleetSource {
 public:
  SyntheticFleetSource(std::size_t count, std::size_t num_decisions,
                       std::uint64_t seed) noexcept
      : count_(count), num_decisions_(num_decisions), seed_(seed) {}

  std::size_t next_batch(std::span<VehicleSeed> out) override {
    std::size_t r = 0;
    while (r < out.size() && next_ < count_) {
      const std::uint64_t id = next_++;
      Rng rng(derive_seed(seed_, {0xF1, id}));
      out[r++] = VehicleSeed{
          id, static_cast<DecisionId>(rng.uniform_int(
                  0, static_cast<std::int64_t>(num_decisions_) - 1))};
    }
    return r;
  }

 private:
  std::size_t count_;
  std::size_t num_decisions_;
  std::uint64_t seed_;
  std::size_t next_ = 0;
};

}  // namespace avcp::core
