// Equilibrium analysis of the data-sharing game.
//
// The lattice game has coordination structure: several monomorphic states
// (everyone at one decision) are simultaneously stable, and which one the
// population reaches depends on the sharing ratios and the initial mix.
// These tools answer the questions the FDS controller (and anyone choosing
// desired decision fields) needs:
//
//  * is a given pure state invasion-proof at ratio vector x?
//  * which pure states are stable at x?
//  * what long-run state does the population reach from a given start
//    ("the equilibrium map" x -> limit state)?
//
// The paper implicitly relies on these properties when it picks desired
// fields its controller can reach; DESIGN.md discusses how we make that
// explicit.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/game.h"

namespace avcp::core {

/// Result of an invasion test of a pure state.
struct InvasionReport {
  bool stable = true;
  /// The most profitable invading decision when unstable.
  DecisionId best_invader = 0;
  /// Fitness advantage of the best invader over the resident (<= 0 when
  /// stable).
  double invader_advantage = 0.0;
};

/// Tests whether "everyone in region i plays `resident`" resists invasion
/// by every other decision, holding the rest of the state fixed: a resident
/// is stable iff no rare mutant earns strictly higher fitness.
InvasionReport test_pure_invasion(const MultiRegionGame& game,
                                  const GameState& state,
                                  std::span<const double> x, RegionId i,
                                  DecisionId resident, double tol = 1e-9);

/// All decisions that are invasion-proof residents of region i at ratio x,
/// assuming every *other* region holds the distribution in `state`.
std::vector<DecisionId> stable_pure_decisions(const MultiRegionGame& game,
                                              const GameState& state,
                                              std::span<const double> x,
                                              RegionId i, double tol = 1e-9);

/// Options for the long-run limit search.
struct LimitOptions {
  std::size_t max_rounds = 20000;
  /// Convergence: max |p^{t+1} - p^t| below this for `patience` rounds.
  double motion_tol = 1e-10;
  std::size_t patience = 50;
};

/// Runs the replicator dynamics at constant x until motion stops (or the
/// round cap); returns the reached state and whether it settled.
struct LimitResult {
  GameState state;
  bool settled = false;
  std::size_t rounds = 0;
};

LimitResult long_run_limit(const MultiRegionGame& game, GameState start,
                           std::span<const double> x,
                           const LimitOptions& options = {});

/// One row of the equilibrium map: the long-run limit from the uniform
/// state at a constant scalar ratio.
struct EquilibriumMapEntry {
  double x = 0.0;
  GameState limit;
  bool settled = false;
};

/// Sweeps scalar ratios over [0, 1] (inclusive, `steps` samples >= 2) and
/// records the long-run limit from the uniform state at each — the object
/// behind Fig. 10's contrast between x = 0.2 and x = 1.0.
std::vector<EquilibriumMapEntry> equilibrium_map(
    const MultiRegionGame& game, std::size_t steps,
    const LimitOptions& options = {});

}  // namespace avcp::core
