// The data-sharing decision lattice (paper §III, Fig. 2).
//
// With N sensor types each decision is a subset of sensor types to share;
// there are K = 2^N decisions. Decisions are numbered exactly as in the
// paper: by decreasing subset size, then lexicographically with the first
// sensor most significant — for the canonical [camera, lidar, radar] order
// this yields P1 = {cam,lid,rad}, P2 = {cam,lid}, P3 = {cam,rad},
// P4 = {lid,rad}, P5 = {cam}, P6 = {lid}, P7 = {rad}, P8 = {}.
//
// The paper's order relation: k "precedes" l (k ⪯ l) iff P^l ⊆ P^k, i.e. l
// shares a subset of what k shares. The lattice-based policy grants a
// vehicle with decision k access (with probability x) to data shared by
// vehicles whose decision l satisfies P^l ⊆ P^k — sharing more earns access
// to more (see DESIGN.md §2 on the paper's subscript typo in Eq. (4)).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace avcp::core {

/// Index of a decision within a lattice, 0-based: decision 0 shares all
/// sensors (the paper's P^1), decision K-1 shares none (P^K).
using DecisionId = std::uint32_t;

/// Bitmask of shared sensor types; sensor 0 occupies the most significant
/// of the N used bits so that mask order matches the paper's numbering.
using SensorMask = std::uint32_t;

/// Whether a decision can access data of same-decision vehicles.
/// Eq. (1) uses the strict subset, Eq. (4) the non-strict one; the library
/// defaults to non-strict (peers with identical decisions share).
enum class AccessRule : std::uint8_t { kSubsetOrEqual = 0, kStrictSubset = 1 };

class DecisionLattice {
 public:
  /// Builds the full lattice over `num_sensors` sensor types (1..16).
  explicit DecisionLattice(std::size_t num_sensors);

  std::size_t num_sensors() const noexcept { return num_sensors_; }
  std::size_t num_decisions() const noexcept { return masks_.size(); }

  /// The sensor subset shared under decision k.
  SensorMask mask(DecisionId k) const;

  /// The decision sharing exactly `mask`.
  DecisionId decision_of(SensorMask mask) const;

  /// Bit of sensor `s` (0-based in declaration order) within masks.
  SensorMask sensor_bit(std::size_t s) const;

  /// True if decision k shares sensor s.
  bool shares(DecisionId k, std::size_t s) const;

  /// Number of sensors shared under decision k.
  std::size_t cardinality(DecisionId k) const;

  /// The paper's k ⪯ l: P^l ⊆ P^k.
  bool preceq(DecisionId k, DecisionId l) const;

  /// The paper's k ≺ l: P^l ⊊ P^k (l is a successor of k).
  bool precedes(DecisionId k, DecisionId l) const;

  /// Decisions whose shared data a decision-k vehicle may access under the
  /// lattice policy: { l : P^l ⊆ P^k } (or strict, per rule). Precomputed;
  /// sorted ascending.
  std::span<const DecisionId> accessible(DecisionId k, AccessRule rule) const;

  /// Cover edges of the Hasse diagram (Fig. 2): (k, l) where P^l is P^k
  /// minus exactly one sensor.
  std::vector<std::pair<DecisionId, DecisionId>> hasse_edges() const;

  /// Human-readable label, e.g. "P3{cam,rad}" with default sensor names or
  /// the provided ones.
  std::string label(DecisionId k,
                    std::span<const std::string> sensor_names = {}) const;

 private:
  std::size_t num_sensors_;
  std::vector<SensorMask> masks_;       // decision -> mask, paper order
  std::vector<DecisionId> of_mask_;     // mask -> decision
  std::vector<std::vector<DecisionId>> accessible_eq_;
  std::vector<std::vector<DecisionId>> accessible_strict_;
};

}  // namespace avcp::core
