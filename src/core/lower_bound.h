// Lower bound on the optimal convergence time (paper Prop. 4.1 / Eq. (22)).
//
// Proposition 4.1 bounds each per-round change Delta p_{i,k}. We use a
// tightened (still sound) form of those bounds. Writing U_k for decision
// k's utility gain and C_i(t) for the strongest coupling reachable by round
// t under the Lambda-smoothness of Eq. (13),
//
//   C_i(t) = gamma_ii * x_i^max(t) + sum_j gamma_ji * x_j^max(t),
//   x_j^max(t) = min(1, x_j^0 + (t+1) * Lambda),
//   0 <= U_k <= beta_i * Fhat_k * C_i(t),   Fhat_k = max_{l in acc(k)} f_l,
//
// the fitness gap obeys
//
//   q_k - qbar = (1-p) q_k - sum_{l != k} p_l q_l
//     <=  (1-p) (beta_i Fhat_k C_i(t) + g_max - g_k)          [q_l >= -g_max]
//     >= -(1-p) (g_k + beta_i f_max C_i(t)),                  [q_l <= b f C]
//
// so |Delta p| <= eta p (1-p) R with the respective rate ceilings R. The
// (1-p) logistic factor and the max-f (rather than sum-f) pool ceiling make
// the relaxation considerably tighter than the paper's literal Eq. (20)/(21)
// while remaining valid upper bounds on the true motion.
//
// Relaxing the coupling across regions and decisions decouples the problem
// into one-dimensional reachability questions with monotone rates, for
// which the greedy "move at the maximal admissible rate" schedule is
// optimal. The bound is the max over components of the first round the
// component can be inside its target — the denominator of the paper's
// approximation ratios (Fig. 9). It remains a *relaxation*: the true
// optimum (and hence FDS) can exceed it by the slack between the rate
// ceilings and the fitness gaps the dynamics actually realise
// (EXPERIMENTS.md quantifies this for the reproduced instances).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/fds.h"
#include "core/game.h"

namespace avcp::core {

struct LowerBoundOptions {
  /// Lambda of Eq. (13) — must match the FDS run being compared against.
  double max_step = 0.05;
  /// Cap on the search; components needing more are reported unreachable.
  std::size_t max_rounds = 100000;
};

struct LowerBoundResult {
  /// Lower bound on rounds until every component can be inside its target.
  std::size_t rounds = 0;
  /// False if some component can never reach its target under the relaxed
  /// dynamics (e.g. an extinct decision with a positive target).
  bool reachable = true;
  /// The binding component (argmax of per-component rounds).
  RegionId binding_region = 0;
  DecisionId binding_decision = 0;
};

/// Computes the relaxed-problem lower bound from the initial state and
/// ratio vector x0.
LowerBoundResult convergence_lower_bound(const MultiRegionGame& game,
                                         const GameState& initial,
                                         const DesiredFields& desired,
                                         std::span<const double> x0,
                                         const LowerBoundOptions& opts = {});

}  // namespace avcp::core
