#include "core/rate_model.h"

#include <cmath>

#include "common/contracts.h"

namespace avcp::core {

double CaseInfo::limit(double p_current) const noexcept {
  switch (kind) {
    case CaseKind::kConvergeOne:
      return 1.0;
    case CaseKind::kConvergeZero:
      return 0.0;
    case CaseKind::kUnstableInterior:
      return p_current >= rest_point ? 1.0 : 0.0;
    case CaseKind::kStableInterior:
      return rest_point;
    case CaseKind::kNeutral:
      return p_current;
  }
  return p_current;
}

CaseInfo classify_case(const AffineRate& rate, double tol) noexcept {
  const double r0 = rate(0.0);  // alpha2
  const double r1 = rate(1.0);  // alpha1 + alpha2
  CaseInfo info;
  if (std::abs(r0) <= tol && std::abs(r1) <= tol) {
    info.kind = CaseKind::kNeutral;
    return info;
  }
  if (r0 >= -tol && r1 >= -tol) {
    info.kind = CaseKind::kConvergeOne;  // Case 1
    return info;
  }
  if (r0 <= tol && r1 <= tol) {
    info.kind = CaseKind::kConvergeZero;  // Case 2
    return info;
  }
  const double root = rate.rest_point();
  if (r0 <= tol && r1 >= -tol) {
    info.kind = CaseKind::kUnstableInterior;  // Case 3 (rate increasing)
    info.rest_point = root;
    return info;
  }
  info.kind = CaseKind::kStableInterior;  // Case 4 (rate decreasing, ESS)
  info.rest_point = root;
  return info;
}

double growth_rate_at(const MultiRegionGame& game, const GameState& state,
                      std::span<const double> x, RegionId i, DecisionId k,
                      double p_new) {
  AVCP_EXPECT(p_new >= 0.0 && p_new <= 1.0);
  AVCP_EXPECT(i < game.num_regions());
  AVCP_EXPECT(k < game.num_decisions());

  const std::size_t num_k = game.num_decisions();
  const double p_cur = state.p[i][k];
  const double remainder_cur = 1.0 - p_cur;
  const double remainder_new = 1.0 - p_new;

  // Hypothetical region-i distribution with p_{i,k} = p_new and the other
  // groups rescaled proportionally (uniformly if currently extinct).
  GameState probe = state;
  auto& row = probe.p[i];
  constexpr double kEps = 1e-12;
  if (remainder_cur > kEps) {
    const double scale = remainder_new / remainder_cur;
    for (DecisionId d = 0; d < num_k; ++d) {
      if (d != k) row[d] *= scale;
    }
  } else {
    const double share =
        num_k > 1 ? remainder_new / static_cast<double>(num_k - 1) : 0.0;
    for (DecisionId d = 0; d < num_k; ++d) {
      if (d != k) row[d] = share;
    }
  }
  row[k] = p_new;

  const double q_k = game.fitness(probe, x, i, k);
  const double qbar = game.average_fitness(probe, x, i);
  return q_k - qbar;
}

AffineRate affine_rate(const MultiRegionGame& game, const GameState& state,
                       std::span<const double> x, RegionId i, DecisionId k) {
  // The true growth rate along the rescaling path is r(p) = (1-p) s(p) with
  // s affine, so two probes recover s exactly:
  //   s(0)   = r(0) / (1-0)   = r(0)
  //   s(1/2) = r(1/2) / (1/2) = 2 r(1/2)
  const double s0 = growth_rate_at(game, state, x, i, k, 0.0);
  const double s_half = 2.0 * growth_rate_at(game, state, x, i, k, 0.5);
  return AffineRate{2.0 * (s_half - s0), s0};
}

RateFamily rate_family(const MultiRegionGame& game, const GameState& state,
                       std::span<const double> x, RegionId i, DecisionId k) {
  AVCP_EXPECT(x.size() == game.num_regions());
  std::vector<double> x_lo(x.begin(), x.end());
  std::vector<double> x_hi(x.begin(), x.end());
  x_lo[i] = 0.0;
  x_hi[i] = 1.0;

  const AffineRate at0 = affine_rate(game, state, x_lo, i, k);
  const AffineRate at1 = affine_rate(game, state, x_hi, i, k);

  RateFamily family;
  family.a1_const = at0.alpha1;
  family.a1_slope = at1.alpha1 - at0.alpha1;
  family.a2_const = at0.alpha2;
  family.a2_slope = at1.alpha2 - at0.alpha2;
  return family;
}

}  // namespace avcp::core
