// Evolutionary game over data-sharing decisions (paper §III-IV-A).
//
// Vehicles in region r_i are grouped by decision; p_i = [p_{i,1}..p_{i,K}]
// is the proportion of each decision group. Each round:
//
//   fitness (Eq. 4):
//     q_{i,k} = beta_i * x_i * gamma_ii * A_{i,k}
//             + beta_i * sum_{j in N_i} x_j * gamma_ji * A_{j,k}
//             - g_k,
//     with pooled accessible utility A_{j,k} = sum_{l : P^l ⊆ P^k} p_{j,l} f_l
//
//   replicator dynamics (Eq. 5):
//     p_{i,k} <- p_{i,k} * (1 + eta * (q_{i,k} - qbar_i)),
//
// where eta is a step size (the paper's Eq. (5) is eta = 1) and qbar_i the
// region's average fitness. The update preserves the simplex: factors are
// clamped at zero and the distribution renormalised. An optional mutation
// floor mixes in the uniform distribution, modelling exploratory vehicles.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/lattice.h"

namespace avcp {
class Serializer;
class Deserializer;
}  // namespace avcp

namespace avcp::core {

using RegionId = std::uint32_t;

/// Per-region game parameters derived from clustering (beta_i) and the
/// region graph (gamma weights).
struct RegionSpec {
  double beta = 1.0;        // utility coefficient beta_i of the region
  double gamma_self = 1.0;  // inner-region sharing frequency gamma_ii
  /// Neighbour regions with their inter-region frequency gamma_ji.
  std::vector<std::pair<RegionId, double>> neighbors;
};

/// Game-wide parameters.
struct GameConfig {
  DecisionLattice lattice{3};
  std::vector<double> utility;  // f_k, one per decision
  std::vector<double> privacy;  // g_k, one per decision
  AccessRule access = AccessRule::kSubsetOrEqual;
  double step_size = 1.0;  // eta
  double mutation = 0.0;   // uniform mutation floor in [0, 1)
  /// Floor on the per-round growth factor 1 + eta*(q - qbar). The pure
  /// discrete replicator (floor 0) extinguishes a decision outright when a
  /// single step overshoots, which no finite vehicle population does; the
  /// default bounds per-round attrition at 99%. Set 0 for Eq. (5) verbatim.
  double min_growth_factor = 0.01;
};

/// A point of the product simplex: p[i][k] = proportion of decision k in
/// region i. Every row sums to 1.
struct GameState {
  std::vector<std::vector<double>> p;

  std::size_t num_regions() const noexcept { return p.size(); }

  /// Checkpoint hooks: exact bit patterns of every proportion.
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);
};

class MultiRegionGame {
 public:
  /// Neighbour indices in each spec must reference valid regions; utility /
  /// privacy vectors must match the lattice size.
  MultiRegionGame(GameConfig config, std::vector<RegionSpec> regions);

  const GameConfig& config() const noexcept { return config_; }
  const DecisionLattice& lattice() const noexcept { return config_.lattice; }
  std::size_t num_regions() const noexcept { return regions_.size(); }
  std::size_t num_decisions() const noexcept {
    return config_.lattice.num_decisions();
  }
  const RegionSpec& region(RegionId i) const;
  std::span<const RegionSpec> regions() const noexcept { return regions_; }

  /// Pooled accessible utility A(p, k) = sum over decisions l accessible
  /// from k of p_l * f_l.
  double pooled_utility(std::span<const double> p, DecisionId k) const;

  /// Eq. (4): fitness of decision k in region i at sharing ratios x.
  double fitness(const GameState& state, std::span<const double> x, RegionId i,
                 DecisionId k) const;

  /// All decisions' fitness in region i.
  std::vector<double> region_fitness(const GameState& state,
                                     std::span<const double> x,
                                     RegionId i) const;

  /// Allocation-free variant: resizes `q` to num_decisions() and fills it
  /// (no allocation once capacity is established — steady-state epoch
  /// loops reuse one scratch vector per region).
  void region_fitness_into(const GameState& state, std::span<const double> x,
                           RegionId i, std::vector<double>& q) const;

  /// Population-average fitness qbar_i.
  double average_fitness(const GameState& state, std::span<const double> x,
                         RegionId i) const;

  /// Eq. (5): one synchronous replicator round over all regions.
  void replicator_step(GameState& state, std::span<const double> x) const;

  /// Uniform initial state (every decision at 1/K in every region).
  GameState uniform_state() const;

  /// State with the same distribution in every region. `p` must lie on the
  /// simplex (validated).
  GameState broadcast_state(std::span<const double> p) const;

 private:
  GameConfig config_;
  std::vector<RegionSpec> regions_;
};

/// Validates that `p` is a distribution (non-negative, sums to 1 within
/// tolerance); throws ContractViolation otherwise.
void check_distribution(std::span<const double> p, double tol = 1e-6);

}  // namespace avcp::core
