#include "core/lower_bound.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace avcp::core {

namespace {

/// Fhat_k = max f_l over decisions accessible from k (ceiling of the pooled
/// utility A, since the p-weights sum to at most 1).
std::vector<double> pool_ceilings(const MultiRegionGame& game) {
  std::vector<double> ceilings(game.num_decisions(), 0.0);
  const auto& config = game.config();
  for (DecisionId k = 0; k < game.num_decisions(); ++k) {
    for (const DecisionId l : config.lattice.accessible(k, config.access)) {
      ceilings[k] = std::max(ceilings[k], config.utility[l]);
    }
  }
  return ceilings;
}

}  // namespace

LowerBoundResult convergence_lower_bound(const MultiRegionGame& game,
                                         const GameState& initial,
                                         const DesiredFields& desired,
                                         std::span<const double> x0,
                                         const LowerBoundOptions& opts) {
  AVCP_EXPECT(initial.p.size() == game.num_regions());
  AVCP_EXPECT(x0.size() == game.num_regions());
  AVCP_EXPECT(desired.num_regions() == game.num_regions());
  AVCP_EXPECT(opts.max_step > 0.0);

  const auto ceilings = pool_ceilings(game);
  const double f_max = *std::max_element(game.config().utility.begin(),
                                         game.config().utility.end());
  const double g_max = *std::max_element(game.config().privacy.begin(),
                                         game.config().privacy.end());
  const double eta = game.config().step_size;

  LowerBoundResult result;
  for (RegionId i = 0; i < game.num_regions(); ++i) {
    const RegionSpec& spec = game.region(i);

    // Strongest coupling reachable by round t: every ratio (own and
    // neighbours') is Lambda-bounded per Eq. (13).
    const auto coupling_at = [&](std::size_t t) {
      const double ramp = static_cast<double>(t + 1) * opts.max_step;
      double coupling =
          spec.gamma_self * std::min(1.0, x0[i] + ramp);
      for (const auto& [j, gamma] : spec.neighbors) {
        coupling += gamma * std::min(1.0, x0[j] + ramp);
      }
      return coupling;
    };

    for (DecisionId k = 0; k < game.num_decisions(); ++k) {
      const Interval& target = desired.target(i, k);
      double p = initial.p[i][k];
      if (target.contains(p)) continue;

      const bool going_up = p < target.lo;
      const double g_k = game.config().privacy[k];
      std::size_t rounds = 0;
      bool reached = false;
      while (rounds < opts.max_rounds) {
        const double coupling = coupling_at(rounds);
        double rate;  // ceiling on |q_k - qbar|
        if (going_up) {
          rate = spec.beta * ceilings[k] * coupling +
                 std::max(0.0, g_max - g_k);
        } else {
          rate = g_k + spec.beta * f_max * coupling;
        }
        const double delta = eta * p * (1.0 - p) * rate;
        if (delta <= 0.0) break;  // cannot move: p in {0, 1} or zero rate
        p = going_up ? std::min(1.0, p + delta) : std::max(0.0, p - delta);
        ++rounds;
        if (going_up ? p >= target.lo : p <= target.hi) {
          reached = true;
          break;
        }
      }
      if (!reached) {
        result.reachable = false;
        result.rounds = std::max(result.rounds, opts.max_rounds);
        result.binding_region = i;
        result.binding_decision = k;
        continue;
      }
      if (rounds > result.rounds) {
        result.rounds = rounds;
        result.binding_region = i;
        result.binding_decision = k;
      }
    }
  }
  return result;
}

}  // namespace avcp::core
