// Growth-rate model and convergence-case taxonomy (paper §IV-A Step 4,
// Eqs. (5)-(10)).
//
// Fix a region i and decision k, and consider moving p = p_{i,k} along the
// simplex path that rescales the remaining decisions proportionally. The
// per-capita growth rate of Eq. (5) then factors exactly as
//
//   r(p) = q_{i,k}(p) - qbar_i(p) = (1 - p) * s(p),
//
// where the *advantage line* s(p) = alpha1 * p + alpha2 is affine in p: it
// is decision k's fitness edge over the (fixed-composition) mix of the
// other decisions. The replicator restricted to this path is the textbook
// two-strategy dynamic  dp = eta * p (1-p) s(p),  so the paper's four-case
// taxonomy (Fig. 6) is exactly the sign pattern of s at the endpoints:
//
//   Case 1  s >= 0 on [0,1]          -> p -> 1
//   Case 2  s <= 0 on [0,1]          -> p -> 0
//   Case 3  s(0) <= 0 <= s(1)        -> interior root repels (3a/3b)
//   Case 4  s(0) >= 0 >= s(1)        -> interior root is the stable ESS
//
// The paper's alpha1/alpha2 are an algebraic approximation of this line;
// we compute it exactly from two probes of the true dynamics (p = 0 and
// p = 1/2). Because Eq. (4)'s fitness is affine in the local sharing ratio
// x_i, both coefficients are affine in x_i as well (RateFamily), which lets
// FDS solve for admissible x_i in closed form via interval arithmetic.
#pragma once

#include <span>

#include "common/interval.h"
#include "core/game.h"

namespace avcp::core {

/// The advantage line s(p) = alpha1 * p + alpha2 of one (region, decision).
/// The paper's growth-rate model: the replicator flow of p is
/// eta * p * (1-p) * s(p).
struct AffineRate {
  double alpha1 = 0.0;
  double alpha2 = 0.0;

  double operator()(double p) const noexcept { return alpha1 * p + alpha2; }
  /// Root of s (the interior rest point -alpha2/alpha1); only meaningful
  /// when alpha1 != 0.
  double rest_point() const noexcept { return -alpha2 / alpha1; }
};

/// The paper's four convergence cases (Fig. 6). kUnstableInterior covers
/// Cases 3a/3b (the limit depends on which side of the rest point p sits);
/// kStableInterior is Case 4 (ESS).
enum class CaseKind : std::uint8_t {
  kConvergeOne = 0,      // Case 1: s >= 0 on [0,1]
  kConvergeZero = 1,     // Case 2: s <= 0 on [0,1]
  kUnstableInterior = 2, // Case 3: s(0) <= 0 <= s(1), interior root repels
  kStableInterior = 3,   // Case 4: s(0) >= 0 >= s(1), interior root is ESS
  kNeutral = 4,          // s identically ~0: dynamics are frozen
};

struct CaseInfo {
  CaseKind kind = CaseKind::kNeutral;
  /// Interior rest point when kind is k{Unstable,Stable}Interior.
  double rest_point = 0.0;

  /// Predicted limit of p given its current value (flow of
  /// dp = p (1-p) s(p)). For the stable case this is the ESS itself.
  double limit(double p_current) const noexcept;
};

/// Classifies the advantage line per Eqs. (6)-(10). `tol` treats near-zero
/// endpoint values as zero.
CaseInfo classify_case(const AffineRate& rate, double tol = 1e-12) noexcept;

/// Exact per-capita growth rate of p_{i,k} evaluated at a hypothetical value
/// p_new, holding neighbours fixed and redistributing region i's remaining
/// mass proportionally (uniformly when the current remainder is zero).
/// At p_new = p_{i,k}^t this equals q_{i,k} - qbar_i exactly.
double growth_rate_at(const MultiRegionGame& game, const GameState& state,
                      std::span<const double> x, RegionId i, DecisionId k,
                      double p_new);

/// The advantage line of (i, k) at the given ratio vector, recovered
/// exactly from growth-rate probes at p = 0 and p = 1/2:
///   s(0) = r(0), s(1/2) = 2 r(1/2)
///   alpha2 = s(0), alpha1 = 2 * (s(1/2) - s(0)).
AffineRate affine_rate(const MultiRegionGame& game, const GameState& state,
                       std::span<const double> x, RegionId i, DecisionId k);

/// alpha1 and alpha2 as affine functions of the *local* ratio x_i, with all
/// other ratios frozen at their current values (Algorithm 2's
/// "x_j^t = x_j^{t-1} for j != i" convention).
struct RateFamily {
  double a1_const = 0.0;
  double a1_slope = 0.0;
  double a2_const = 0.0;
  double a2_slope = 0.0;

  AffineRate at(double xi) const noexcept {
    return AffineRate{a1_const + a1_slope * xi, a2_const + a2_slope * xi};
  }
  /// Coefficients (slope, intercept) of alpha1(x)+alpha2(x) = s(1) in x.
  std::pair<double, double> sum_affine() const noexcept {
    return {a1_slope + a2_slope, a1_const + a2_const};
  }
  /// Coefficients of s(p_fixed) = p_fixed*alpha1(x) + alpha2(x) in x.
  std::pair<double, double> rate_at_p_affine(double p_fixed) const noexcept {
    return {p_fixed * a1_slope + a2_slope, p_fixed * a1_const + a2_const};
  }
};

RateFamily rate_family(const MultiRegionGame& game, const GameState& state,
                       std::span<const double> x, RegionId i, DecisionId k);

}  // namespace avcp::core
