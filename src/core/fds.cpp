#include "core/fds.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/log.h"
#include "common/serial.h"

namespace avcp::core {

DesiredFields::DesiredFields(std::size_t num_regions,
                             std::size_t num_decisions) {
  AVCP_EXPECT(num_regions >= 1 && num_decisions >= 1);
  targets_.assign(num_regions,
                  std::vector<Interval>(num_decisions, Interval{0.0, 1.0}));
}

const Interval& DesiredFields::target(RegionId i, DecisionId k) const {
  AVCP_EXPECT(i < targets_.size());
  AVCP_EXPECT(k < targets_[i].size());
  return targets_[i][k];
}

void DesiredFields::set_target(RegionId i, DecisionId k, Interval iv) {
  AVCP_EXPECT(i < targets_.size());
  AVCP_EXPECT(k < targets_[i].size());
  AVCP_EXPECT(!iv.empty());
  AVCP_EXPECT(iv.lo >= 0.0 && iv.hi <= 1.0);
  targets_[i][k] = iv;
}

DesiredFields DesiredFields::from_distribution(std::size_t num_regions,
                                               std::span<const double> p_star,
                                               double eps) {
  AVCP_EXPECT(eps >= 0.0);
  check_distribution(p_star);
  DesiredFields fields(num_regions, p_star.size());
  for (RegionId i = 0; i < num_regions; ++i) {
    for (DecisionId k = 0; k < p_star.size(); ++k) {
      fields.set_target(i, k,
                        Interval{std::max(0.0, p_star[k] - eps),
                                 std::min(1.0, p_star[k] + eps)});
    }
  }
  return fields;
}

bool DesiredFields::satisfied(const GameState& state, double tol) const {
  AVCP_EXPECT(state.p.size() == targets_.size());
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    AVCP_EXPECT(state.p[i].size() == targets_[i].size());
    for (std::size_t k = 0; k < targets_[i].size(); ++k) {
      const Interval& iv = targets_[i][k];
      const double p = state.p[i][k];
      if (p < iv.lo - tol || p > iv.hi + tol) return false;
    }
  }
  return true;
}

FixedRatioController::FixedRatioController(double value) : value_(value) {
  AVCP_EXPECT(value >= 0.0 && value <= 1.0);
}

std::vector<double> FixedRatioController::next_x(
    const GameState& state, const std::vector<double>& x_prev) {
  (void)x_prev;
  return std::vector<double>(state.num_regions(), value_);
}

void FixedRatioController::next_x_into(const GameState& state,
                                       const std::vector<double>& x_prev,
                                       std::vector<double>& out) {
  (void)x_prev;
  out.assign(state.num_regions(), value_);
}

FdsController::FdsController(const MultiRegionGame& game,
                             DesiredFields desired, FdsOptions options)
    : game_(game), desired_(std::move(desired)), options_(options) {
  AVCP_EXPECT(desired_.num_regions() == game.num_regions());
  AVCP_EXPECT(desired_.num_decisions() == game.num_decisions());
  AVCP_EXPECT(options_.max_step > 0.0);
}

void DesiredFields::save_state(Serializer& s) const {
  s.put_u64(num_regions());
  s.put_u64(num_decisions());
  for (const auto& row : targets_) {
    for (const Interval& iv : row) {
      s.put_f64(iv.lo);
      s.put_f64(iv.hi);
    }
  }
}

void DesiredFields::load_state(Deserializer& d) {
  Deserializer::check(d.get_u64() == num_regions(),
                      "DesiredFields region count mismatch");
  Deserializer::check(d.get_u64() == num_decisions(),
                      "DesiredFields decision count mismatch");
  for (auto& row : targets_) {
    for (Interval& iv : row) {
      iv.lo = d.get_f64();
      iv.hi = d.get_f64();
    }
  }
}

void FdsController::set_desired(DesiredFields desired) {
  AVCP_EXPECT(desired.num_regions() == game_.num_regions());
  AVCP_EXPECT(desired.num_decisions() == game_.num_decisions());
  desired_ = std::move(desired);
}

IntervalSet FdsController::decision_feasible_set(const GameState& state,
                                                 std::span<const double> x_prev,
                                                 RegionId i,
                                                 DecisionId k) const {
  const Interval domain{0.0, 1.0};
  const Interval& target = desired_.target(i, k);
  const double tol = options_.tol;
  const double p_cur = state.p[i][k];

  // Target already covers the whole simplex coordinate: any x works.
  if (target.lo <= tol && target.hi >= 1.0 - tol) {
    return IntervalSet(domain);
  }

  const RateFamily family = rate_family(game_, state, x_prev, i, k);
  const auto [sum_a, sum_b] = family.sum_affine();        // alpha1 + alpha2
  const double a2_a = family.a2_slope;                    // alpha2 slope
  const double a2_b = family.a2_const;                    // alpha2 intercept

  if (target.hi >= 1.0 - tol) {
    // Desired field contains 1 (Algorithm 2 lines 5-6): Case 1 or the
    // unstable-interior flow toward 1 (p_cur on/above the rest point, i.e.
    // r(p_cur) >= 0 with increasing r).
    Interval case1 = solve_affine_ge(sum_a, sum_b, domain);
    case1 = Interval::intersect(case1, solve_affine_ge(a2_a, a2_b, domain));

    Interval case3up = solve_affine_ge(sum_a, sum_b, domain);
    case3up = Interval::intersect(case3up, solve_affine_le(a2_a, a2_b, domain));
    const auto [rp_a, rp_b] = family.rate_at_p_affine(p_cur);
    case3up = Interval::intersect(case3up, solve_affine_ge(rp_a, rp_b, domain));

    IntervalSet set(case1);
    set.add(case3up);
    return set;
  }

  if (target.lo <= tol) {
    // Desired field contains 0 (lines 7-8): Case 2 or the unstable-interior
    // flow toward 0.
    Interval case2 = solve_affine_le(sum_a, sum_b, domain);
    case2 = Interval::intersect(case2, solve_affine_le(a2_a, a2_b, domain));

    Interval case3down = solve_affine_ge(sum_a, sum_b, domain);
    case3down =
        Interval::intersect(case3down, solve_affine_le(a2_a, a2_b, domain));
    const auto [rp_a, rp_b] = family.rate_at_p_affine(p_cur);
    case3down =
        Interval::intersect(case3down, solve_affine_le(rp_a, rp_b, domain));

    IntervalSet set(case2);
    set.add(case3down);
    return set;
  }

  // Interior target (lines 9-10): Case 4 with the ESS inside [lo, hi].
  // With decreasing rate, the rest point lies in [lo, hi] iff r(lo) >= 0
  // and r(hi) <= 0.
  Interval case4 = solve_affine_le(sum_a, sum_b, domain);
  case4 = Interval::intersect(case4, solve_affine_ge(a2_a, a2_b, domain));
  const auto [lo_a, lo_b] = family.rate_at_p_affine(target.lo);
  case4 = Interval::intersect(case4, solve_affine_ge(lo_a, lo_b, domain));
  const auto [hi_a, hi_b] = family.rate_at_p_affine(target.hi);
  case4 = Interval::intersect(case4, solve_affine_le(hi_a, hi_b, domain));
  return IntervalSet(case4);
}

IntervalSet FdsController::feasible_set(const GameState& state,
                                        std::span<const double> x_prev,
                                        RegionId i) const {
  IntervalSet set = IntervalSet::whole(0.0, 1.0);
  for (DecisionId k = 0; k < game_.num_decisions(); ++k) {
    set = IntervalSet::intersect(set,
                                 decision_feasible_set(state, x_prev, i, k));
    if (set.empty()) break;
  }
  return set;
}

IntervalSet FdsController::prioritized_feasible_set(
    const GameState& state, std::span<const double> x_prev, RegionId i) const {
  // Rank decisions by how far their proportion sits from the target.
  std::vector<std::pair<double, DecisionId>> ranked;
  ranked.reserve(game_.num_decisions());
  for (DecisionId k = 0; k < game_.num_decisions(); ++k) {
    const Interval& target = desired_.target(i, k);
    const double p = state.p[i][k];
    const double violation = p < target.lo ? target.lo - p
                             : p > target.hi ? p - target.hi
                                             : 0.0;
    ranked.emplace_back(violation, k);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  IntervalSet set = IntervalSet::whole(0.0, 1.0);
  for (const auto& [violation, k] : ranked) {
    const IntervalSet candidate = IntervalSet::intersect(
        set, decision_feasible_set(state, x_prev, i, k));
    if (!candidate.empty()) set = candidate;
  }
  return set;
}

std::vector<double> FdsController::next_x(const GameState& state,
                                          const std::vector<double>& x_prev) {
  std::vector<double> x_next;
  next_x_into(state, x_prev, x_next);
  return x_next;
}

void FdsController::next_x_into(const GameState& state,
                                const std::vector<double>& x_prev,
                                std::vector<double>& out) {
  AVCP_EXPECT(x_prev.size() == game_.num_regions());
  std::vector<double>& x_next = out;
  x_next = x_prev;
  for (RegionId i = 0; i < game_.num_regions(); ++i) {
    // Gauss-Seidel sweeps see the ratios already updated this round.
    const std::vector<double>& x_view =
        options_.sweep == FdsOptions::Sweep::kGaussSeidel ? x_next : x_prev;
    IntervalSet feasible = feasible_set(state, x_view, i);
    if (feasible.empty()) {
      // No single-round ratio satisfies every decision's flow condition at
      // once (the conditions can transiently conflict, e.g. suppressing P1
      // wants a low ratio while suppressing P8 wants a high one). Fall back
      // to serving the most-violated decisions first.
      AVCP_LOG(kDebug, "fds") << "region " << i
                              << ": empty feasible set, using priority order";
      feasible = prioritized_feasible_set(state, x_view, i);
    }
    AVCP_ENSURE(!feasible.empty());
    const double xi = x_prev[i];
    // Aim for the *interior* of the nearest admissible interval rather than
    // its boundary (Algorithm 2 moves toward min{X}): on the boundary the
    // shaped decision's flow is exactly zero, and competing decisions can
    // push the admissible set away faster than the population converges.
    const double nearest = *feasible.nearest(xi);
    const Interval* part = nullptr;
    for (const Interval& candidate : feasible.parts()) {
      if (candidate.contains(nearest)) {
        part = &candidate;
        break;
      }
    }
    AVCP_ENSURE(part != nullptr);
    const double m = std::min(options_.interior_margin, part->width() / 2.0);
    const Interval interior{part->lo + m, part->hi - m};
    if (interior.contains(xi)) continue;  // lines 12-13 (with margin)
    const double goal = interior.nearest(xi);
    const double delta = std::clamp(goal - xi, -options_.max_step,
                                    options_.max_step);
    x_next[i] = std::clamp(xi + delta, 0.0, 1.0);
  }
}

}  // namespace avcp::core
