#include "core/game.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/serial.h"
#include "common/simd.h"

namespace avcp::core {

void GameState::save_state(Serializer& s) const {
  s.put_u64(p.size());
  for (const std::vector<double>& row : p) put_f64_vec(s, row);
}

void GameState::load_state(Deserializer& d) {
  const std::uint64_t rows = d.get_u64();
  Deserializer::check(rows <= d.remaining() / 8,
                      "GameState row count exceeds payload");
  p.assign(static_cast<std::size_t>(rows), {});
  for (std::vector<double>& row : p) row = get_f64_vec(d);
}

void check_distribution(std::span<const double> p, double tol) {
  double sum = 0.0;
  for (const double v : p) {
    AVCP_EXPECT(v >= -tol);
    sum += v;
  }
  AVCP_EXPECT(std::abs(sum - 1.0) <= tol * static_cast<double>(p.size() + 1));
}

MultiRegionGame::MultiRegionGame(GameConfig config,
                                 std::vector<RegionSpec> regions)
    : config_(std::move(config)), regions_(std::move(regions)) {
  AVCP_EXPECT(!regions_.empty());
  AVCP_EXPECT(config_.utility.size() == config_.lattice.num_decisions());
  AVCP_EXPECT(config_.privacy.size() == config_.lattice.num_decisions());
  AVCP_EXPECT(config_.step_size > 0.0);
  AVCP_EXPECT(config_.mutation >= 0.0 && config_.mutation < 1.0);
  AVCP_EXPECT(config_.min_growth_factor >= 0.0 &&
              config_.min_growth_factor < 1.0);
  for (const RegionSpec& spec : regions_) {
    AVCP_EXPECT(spec.beta >= 0.0);
    AVCP_EXPECT(spec.gamma_self >= 0.0);
    for (const auto& [j, gamma] : spec.neighbors) {
      AVCP_EXPECT(j < regions_.size());
      AVCP_EXPECT(gamma >= 0.0);
    }
  }
}

const RegionSpec& MultiRegionGame::region(RegionId i) const {
  AVCP_EXPECT(i < regions_.size());
  return regions_[i];
}

double MultiRegionGame::pooled_utility(std::span<const double> p,
                                       DecisionId k) const {
  double pooled = 0.0;
  for (const DecisionId l : config_.lattice.accessible(k, config_.access)) {
    pooled += p[l] * config_.utility[l];
  }
  return pooled;
}

double MultiRegionGame::fitness(const GameState& state,
                                std::span<const double> x, RegionId i,
                                DecisionId k) const {
  AVCP_EXPECT(i < regions_.size());
  AVCP_EXPECT(x.size() == regions_.size());
  AVCP_EXPECT(state.p.size() == regions_.size());
  const RegionSpec& spec = regions_[i];
  double gain = x[i] * spec.gamma_self * pooled_utility(state.p[i], k);
  for (const auto& [j, gamma] : spec.neighbors) {
    gain += x[j] * gamma * pooled_utility(state.p[j], k);
  }
  return spec.beta * gain - config_.privacy[k];
}

std::vector<double> MultiRegionGame::region_fitness(const GameState& state,
                                                    std::span<const double> x,
                                                    RegionId i) const {
  std::vector<double> q;
  region_fitness_into(state, x, i, q);
  return q;
}

void MultiRegionGame::region_fitness_into(const GameState& state,
                                          std::span<const double> x,
                                          RegionId i,
                                          std::vector<double>& q) const {
  q.resize(num_decisions());
  for (DecisionId k = 0; k < q.size(); ++k) {
    q[k] = fitness(state, x, i, k);
  }
}

double MultiRegionGame::average_fitness(const GameState& state,
                                        std::span<const double> x,
                                        RegionId i) const {
  const auto q = region_fitness(state, x, i);
  double avg = 0.0;
  for (DecisionId k = 0; k < q.size(); ++k) {
    avg += state.p[i][k] * q[k];
  }
  return avg;
}

void MultiRegionGame::replicator_step(GameState& state,
                                      std::span<const double> x) const {
  AVCP_EXPECT(state.p.size() == regions_.size());
  const std::size_t k = num_decisions();
  const double eta = config_.step_size;
  const double mu = config_.mutation;

  // Synchronous update: all growth rates are computed against the old state.
  std::vector<std::vector<double>> next(state.p.size());
  for (RegionId i = 0; i < regions_.size(); ++i) {
    const auto q = region_fitness(state, x, i);
    double qbar = 0.0;
    for (DecisionId d = 0; d < k; ++d) qbar += state.p[i][d] * q[d];

    auto& row = next[static_cast<std::size_t>(i)];
    row.resize(k);
    // Elementwise growth factors are SIMD (per-lane ops in the scalar
    // order, bit-identical); the row sum is an ordered reduction and
    // stays scalar.
    simd::growth_update(row.data(), state.p[i].data(), q.data(), qbar, eta,
                        config_.min_growth_factor, k);
    double sum = 0.0;
    for (DecisionId d = 0; d < k; ++d) sum += row[d];
    if (sum <= 0.0) {
      // Degenerate step (all factors clamped): keep the old distribution.
      row = state.p[i];
      sum = 1.0;
    }
    simd::normalize_mix(row.data(), sum, mu, mu / static_cast<double>(k), k);
  }
  state.p = std::move(next);
}

GameState MultiRegionGame::uniform_state() const {
  GameState state;
  const double v = 1.0 / static_cast<double>(num_decisions());
  state.p.assign(num_regions(), std::vector<double>(num_decisions(), v));
  return state;
}

GameState MultiRegionGame::broadcast_state(std::span<const double> p) const {
  AVCP_EXPECT(p.size() == num_decisions());
  check_distribution(p);
  GameState state;
  state.p.assign(num_regions(), std::vector<double>(p.begin(), p.end()));
  return state;
}

}  // namespace avcp::core
