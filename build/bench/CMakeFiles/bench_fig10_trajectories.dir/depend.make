# Empty dependencies file for bench_fig10_trajectories.
# This may be replaced when dependencies are built.
