# Empty compiler generated dependencies file for bench_fig8_clustering.
# This may be replaced when dependencies are built.
