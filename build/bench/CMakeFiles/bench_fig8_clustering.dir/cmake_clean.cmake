file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_clustering.dir/bench_fig8_clustering.cpp.o"
  "CMakeFiles/bench_fig8_clustering.dir/bench_fig8_clustering.cpp.o.d"
  "bench_fig8_clustering"
  "bench_fig8_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
