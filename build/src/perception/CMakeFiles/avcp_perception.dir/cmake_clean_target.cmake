file(REMOVE_RECURSE
  "libavcp_perception.a"
)
