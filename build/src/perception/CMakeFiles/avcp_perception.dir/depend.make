# Empty dependencies file for avcp_perception.
# This may be replaced when dependencies are built.
