
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perception/data_plane.cpp" "src/perception/CMakeFiles/avcp_perception.dir/data_plane.cpp.o" "gcc" "src/perception/CMakeFiles/avcp_perception.dir/data_plane.cpp.o.d"
  "/root/repo/src/perception/measure.cpp" "src/perception/CMakeFiles/avcp_perception.dir/measure.cpp.o" "gcc" "src/perception/CMakeFiles/avcp_perception.dir/measure.cpp.o.d"
  "/root/repo/src/perception/scheduler.cpp" "src/perception/CMakeFiles/avcp_perception.dir/scheduler.cpp.o" "gcc" "src/perception/CMakeFiles/avcp_perception.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/avcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/avcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
