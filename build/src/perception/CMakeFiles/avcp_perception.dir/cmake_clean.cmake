file(REMOVE_RECURSE
  "CMakeFiles/avcp_perception.dir/data_plane.cpp.o"
  "CMakeFiles/avcp_perception.dir/data_plane.cpp.o.d"
  "CMakeFiles/avcp_perception.dir/measure.cpp.o"
  "CMakeFiles/avcp_perception.dir/measure.cpp.o.d"
  "CMakeFiles/avcp_perception.dir/scheduler.cpp.o"
  "CMakeFiles/avcp_perception.dir/scheduler.cpp.o.d"
  "libavcp_perception.a"
  "libavcp_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avcp_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
