
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/equilibrium.cpp" "src/core/CMakeFiles/avcp_core.dir/equilibrium.cpp.o" "gcc" "src/core/CMakeFiles/avcp_core.dir/equilibrium.cpp.o.d"
  "/root/repo/src/core/fds.cpp" "src/core/CMakeFiles/avcp_core.dir/fds.cpp.o" "gcc" "src/core/CMakeFiles/avcp_core.dir/fds.cpp.o.d"
  "/root/repo/src/core/game.cpp" "src/core/CMakeFiles/avcp_core.dir/game.cpp.o" "gcc" "src/core/CMakeFiles/avcp_core.dir/game.cpp.o.d"
  "/root/repo/src/core/lattice.cpp" "src/core/CMakeFiles/avcp_core.dir/lattice.cpp.o" "gcc" "src/core/CMakeFiles/avcp_core.dir/lattice.cpp.o.d"
  "/root/repo/src/core/lower_bound.cpp" "src/core/CMakeFiles/avcp_core.dir/lower_bound.cpp.o" "gcc" "src/core/CMakeFiles/avcp_core.dir/lower_bound.cpp.o.d"
  "/root/repo/src/core/rate_model.cpp" "src/core/CMakeFiles/avcp_core.dir/rate_model.cpp.o" "gcc" "src/core/CMakeFiles/avcp_core.dir/rate_model.cpp.o.d"
  "/root/repo/src/core/sensor_model.cpp" "src/core/CMakeFiles/avcp_core.dir/sensor_model.cpp.o" "gcc" "src/core/CMakeFiles/avcp_core.dir/sensor_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/avcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
