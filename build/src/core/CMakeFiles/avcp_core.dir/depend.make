# Empty dependencies file for avcp_core.
# This may be replaced when dependencies are built.
