file(REMOVE_RECURSE
  "libavcp_core.a"
)
