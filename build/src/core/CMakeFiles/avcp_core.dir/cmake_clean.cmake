file(REMOVE_RECURSE
  "CMakeFiles/avcp_core.dir/equilibrium.cpp.o"
  "CMakeFiles/avcp_core.dir/equilibrium.cpp.o.d"
  "CMakeFiles/avcp_core.dir/fds.cpp.o"
  "CMakeFiles/avcp_core.dir/fds.cpp.o.d"
  "CMakeFiles/avcp_core.dir/game.cpp.o"
  "CMakeFiles/avcp_core.dir/game.cpp.o.d"
  "CMakeFiles/avcp_core.dir/lattice.cpp.o"
  "CMakeFiles/avcp_core.dir/lattice.cpp.o.d"
  "CMakeFiles/avcp_core.dir/lower_bound.cpp.o"
  "CMakeFiles/avcp_core.dir/lower_bound.cpp.o.d"
  "CMakeFiles/avcp_core.dir/rate_model.cpp.o"
  "CMakeFiles/avcp_core.dir/rate_model.cpp.o.d"
  "CMakeFiles/avcp_core.dir/sensor_model.cpp.o"
  "CMakeFiles/avcp_core.dir/sensor_model.cpp.o.d"
  "libavcp_core.a"
  "libavcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
