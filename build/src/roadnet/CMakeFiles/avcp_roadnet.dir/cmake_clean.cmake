file(REMOVE_RECURSE
  "CMakeFiles/avcp_roadnet.dir/betweenness.cpp.o"
  "CMakeFiles/avcp_roadnet.dir/betweenness.cpp.o.d"
  "CMakeFiles/avcp_roadnet.dir/builders.cpp.o"
  "CMakeFiles/avcp_roadnet.dir/builders.cpp.o.d"
  "CMakeFiles/avcp_roadnet.dir/graph_io.cpp.o"
  "CMakeFiles/avcp_roadnet.dir/graph_io.cpp.o.d"
  "CMakeFiles/avcp_roadnet.dir/road_graph.cpp.o"
  "CMakeFiles/avcp_roadnet.dir/road_graph.cpp.o.d"
  "CMakeFiles/avcp_roadnet.dir/shortest_path.cpp.o"
  "CMakeFiles/avcp_roadnet.dir/shortest_path.cpp.o.d"
  "libavcp_roadnet.a"
  "libavcp_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avcp_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
