
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadnet/betweenness.cpp" "src/roadnet/CMakeFiles/avcp_roadnet.dir/betweenness.cpp.o" "gcc" "src/roadnet/CMakeFiles/avcp_roadnet.dir/betweenness.cpp.o.d"
  "/root/repo/src/roadnet/builders.cpp" "src/roadnet/CMakeFiles/avcp_roadnet.dir/builders.cpp.o" "gcc" "src/roadnet/CMakeFiles/avcp_roadnet.dir/builders.cpp.o.d"
  "/root/repo/src/roadnet/graph_io.cpp" "src/roadnet/CMakeFiles/avcp_roadnet.dir/graph_io.cpp.o" "gcc" "src/roadnet/CMakeFiles/avcp_roadnet.dir/graph_io.cpp.o.d"
  "/root/repo/src/roadnet/road_graph.cpp" "src/roadnet/CMakeFiles/avcp_roadnet.dir/road_graph.cpp.o" "gcc" "src/roadnet/CMakeFiles/avcp_roadnet.dir/road_graph.cpp.o.d"
  "/root/repo/src/roadnet/shortest_path.cpp" "src/roadnet/CMakeFiles/avcp_roadnet.dir/shortest_path.cpp.o" "gcc" "src/roadnet/CMakeFiles/avcp_roadnet.dir/shortest_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/avcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
