file(REMOVE_RECURSE
  "libavcp_roadnet.a"
)
