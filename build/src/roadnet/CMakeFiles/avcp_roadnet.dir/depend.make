# Empty dependencies file for avcp_roadnet.
# This may be replaced when dependencies are built.
