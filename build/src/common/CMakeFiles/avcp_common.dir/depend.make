# Empty dependencies file for avcp_common.
# This may be replaced when dependencies are built.
