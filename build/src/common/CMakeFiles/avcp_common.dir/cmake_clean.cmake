file(REMOVE_RECURSE
  "CMakeFiles/avcp_common.dir/contracts.cpp.o"
  "CMakeFiles/avcp_common.dir/contracts.cpp.o.d"
  "CMakeFiles/avcp_common.dir/csv.cpp.o"
  "CMakeFiles/avcp_common.dir/csv.cpp.o.d"
  "CMakeFiles/avcp_common.dir/geo.cpp.o"
  "CMakeFiles/avcp_common.dir/geo.cpp.o.d"
  "CMakeFiles/avcp_common.dir/heatmap.cpp.o"
  "CMakeFiles/avcp_common.dir/heatmap.cpp.o.d"
  "CMakeFiles/avcp_common.dir/interval.cpp.o"
  "CMakeFiles/avcp_common.dir/interval.cpp.o.d"
  "CMakeFiles/avcp_common.dir/log.cpp.o"
  "CMakeFiles/avcp_common.dir/log.cpp.o.d"
  "CMakeFiles/avcp_common.dir/rng.cpp.o"
  "CMakeFiles/avcp_common.dir/rng.cpp.o.d"
  "CMakeFiles/avcp_common.dir/stats.cpp.o"
  "CMakeFiles/avcp_common.dir/stats.cpp.o.d"
  "libavcp_common.a"
  "libavcp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avcp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
