
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/contracts.cpp" "src/common/CMakeFiles/avcp_common.dir/contracts.cpp.o" "gcc" "src/common/CMakeFiles/avcp_common.dir/contracts.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/common/CMakeFiles/avcp_common.dir/csv.cpp.o" "gcc" "src/common/CMakeFiles/avcp_common.dir/csv.cpp.o.d"
  "/root/repo/src/common/geo.cpp" "src/common/CMakeFiles/avcp_common.dir/geo.cpp.o" "gcc" "src/common/CMakeFiles/avcp_common.dir/geo.cpp.o.d"
  "/root/repo/src/common/heatmap.cpp" "src/common/CMakeFiles/avcp_common.dir/heatmap.cpp.o" "gcc" "src/common/CMakeFiles/avcp_common.dir/heatmap.cpp.o.d"
  "/root/repo/src/common/interval.cpp" "src/common/CMakeFiles/avcp_common.dir/interval.cpp.o" "gcc" "src/common/CMakeFiles/avcp_common.dir/interval.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/common/CMakeFiles/avcp_common.dir/log.cpp.o" "gcc" "src/common/CMakeFiles/avcp_common.dir/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/common/CMakeFiles/avcp_common.dir/rng.cpp.o" "gcc" "src/common/CMakeFiles/avcp_common.dir/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/common/CMakeFiles/avcp_common.dir/stats.cpp.o" "gcc" "src/common/CMakeFiles/avcp_common.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
