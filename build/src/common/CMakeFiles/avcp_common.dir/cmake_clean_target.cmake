file(REMOVE_RECURSE
  "libavcp_common.a"
)
