# Empty compiler generated dependencies file for avcp_sim.
# This may be replaced when dependencies are built.
