file(REMOVE_RECURSE
  "libavcp_sim.a"
)
