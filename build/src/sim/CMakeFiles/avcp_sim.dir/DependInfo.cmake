
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/agent_sim.cpp" "src/sim/CMakeFiles/avcp_sim.dir/agent_sim.cpp.o" "gcc" "src/sim/CMakeFiles/avcp_sim.dir/agent_sim.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/avcp_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/avcp_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/pipeline.cpp" "src/sim/CMakeFiles/avcp_sim.dir/pipeline.cpp.o" "gcc" "src/sim/CMakeFiles/avcp_sim.dir/pipeline.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/sim/CMakeFiles/avcp_sim.dir/runner.cpp.o" "gcc" "src/sim/CMakeFiles/avcp_sim.dir/runner.cpp.o.d"
  "/root/repo/src/sim/time_varying.cpp" "src/sim/CMakeFiles/avcp_sim.dir/time_varying.cpp.o" "gcc" "src/sim/CMakeFiles/avcp_sim.dir/time_varying.cpp.o.d"
  "/root/repo/src/sim/trace_replay.cpp" "src/sim/CMakeFiles/avcp_sim.dir/trace_replay.cpp.o" "gcc" "src/sim/CMakeFiles/avcp_sim.dir/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/avcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/avcp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/avcp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/avcp_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/avcp_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/avcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
