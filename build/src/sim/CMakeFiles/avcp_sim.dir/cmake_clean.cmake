file(REMOVE_RECURSE
  "CMakeFiles/avcp_sim.dir/agent_sim.cpp.o"
  "CMakeFiles/avcp_sim.dir/agent_sim.cpp.o.d"
  "CMakeFiles/avcp_sim.dir/metrics.cpp.o"
  "CMakeFiles/avcp_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/avcp_sim.dir/pipeline.cpp.o"
  "CMakeFiles/avcp_sim.dir/pipeline.cpp.o.d"
  "CMakeFiles/avcp_sim.dir/runner.cpp.o"
  "CMakeFiles/avcp_sim.dir/runner.cpp.o.d"
  "CMakeFiles/avcp_sim.dir/time_varying.cpp.o"
  "CMakeFiles/avcp_sim.dir/time_varying.cpp.o.d"
  "CMakeFiles/avcp_sim.dir/trace_replay.cpp.o"
  "CMakeFiles/avcp_sim.dir/trace_replay.cpp.o.d"
  "libavcp_sim.a"
  "libavcp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avcp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
