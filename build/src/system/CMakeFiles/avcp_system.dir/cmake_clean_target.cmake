file(REMOVE_RECURSE
  "libavcp_system.a"
)
