# Empty compiler generated dependencies file for avcp_system.
# This may be replaced when dependencies are built.
