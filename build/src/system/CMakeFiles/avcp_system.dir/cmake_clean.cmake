file(REMOVE_RECURSE
  "CMakeFiles/avcp_system.dir/system.cpp.o"
  "CMakeFiles/avcp_system.dir/system.cpp.o.d"
  "libavcp_system.a"
  "libavcp_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avcp_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
