file(REMOVE_RECURSE
  "CMakeFiles/avcp_spatial.dir/grid_index.cpp.o"
  "CMakeFiles/avcp_spatial.dir/grid_index.cpp.o.d"
  "CMakeFiles/avcp_spatial.dir/voronoi.cpp.o"
  "CMakeFiles/avcp_spatial.dir/voronoi.cpp.o.d"
  "libavcp_spatial.a"
  "libavcp_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avcp_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
