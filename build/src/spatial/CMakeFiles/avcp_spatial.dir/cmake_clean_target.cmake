file(REMOVE_RECURSE
  "libavcp_spatial.a"
)
