# Empty dependencies file for avcp_spatial.
# This may be replaced when dependencies are built.
