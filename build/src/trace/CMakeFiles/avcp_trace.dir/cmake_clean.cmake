file(REMOVE_RECURSE
  "CMakeFiles/avcp_trace.dir/density.cpp.o"
  "CMakeFiles/avcp_trace.dir/density.cpp.o.d"
  "CMakeFiles/avcp_trace.dir/generator.cpp.o"
  "CMakeFiles/avcp_trace.dir/generator.cpp.o.d"
  "CMakeFiles/avcp_trace.dir/trace_io.cpp.o"
  "CMakeFiles/avcp_trace.dir/trace_io.cpp.o.d"
  "libavcp_trace.a"
  "libavcp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avcp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
