# Empty compiler generated dependencies file for avcp_trace.
# This may be replaced when dependencies are built.
