file(REMOVE_RECURSE
  "libavcp_trace.a"
)
