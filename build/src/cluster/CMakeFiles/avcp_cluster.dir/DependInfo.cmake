
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/quality.cpp" "src/cluster/CMakeFiles/avcp_cluster.dir/quality.cpp.o" "gcc" "src/cluster/CMakeFiles/avcp_cluster.dir/quality.cpp.o.d"
  "/root/repo/src/cluster/region_clustering.cpp" "src/cluster/CMakeFiles/avcp_cluster.dir/region_clustering.cpp.o" "gcc" "src/cluster/CMakeFiles/avcp_cluster.dir/region_clustering.cpp.o.d"
  "/root/repo/src/cluster/region_graph.cpp" "src/cluster/CMakeFiles/avcp_cluster.dir/region_graph.cpp.o" "gcc" "src/cluster/CMakeFiles/avcp_cluster.dir/region_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roadnet/CMakeFiles/avcp_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/avcp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/avcp_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/avcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
