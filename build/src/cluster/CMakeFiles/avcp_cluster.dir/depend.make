# Empty dependencies file for avcp_cluster.
# This may be replaced when dependencies are built.
