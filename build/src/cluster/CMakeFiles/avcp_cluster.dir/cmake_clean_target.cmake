file(REMOVE_RECURSE
  "libavcp_cluster.a"
)
