file(REMOVE_RECURSE
  "CMakeFiles/avcp_cluster.dir/quality.cpp.o"
  "CMakeFiles/avcp_cluster.dir/quality.cpp.o.d"
  "CMakeFiles/avcp_cluster.dir/region_clustering.cpp.o"
  "CMakeFiles/avcp_cluster.dir/region_clustering.cpp.o.d"
  "CMakeFiles/avcp_cluster.dir/region_graph.cpp.o"
  "CMakeFiles/avcp_cluster.dir/region_graph.cpp.o.d"
  "libavcp_cluster.a"
  "libavcp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avcp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
