# Empty compiler generated dependencies file for region_graph_test.
# This may be replaced when dependencies are built.
