file(REMOVE_RECURSE
  "CMakeFiles/region_graph_test.dir/region_graph_test.cpp.o"
  "CMakeFiles/region_graph_test.dir/region_graph_test.cpp.o.d"
  "region_graph_test"
  "region_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
