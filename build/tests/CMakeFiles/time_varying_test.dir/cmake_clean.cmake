file(REMOVE_RECURSE
  "CMakeFiles/time_varying_test.dir/time_varying_test.cpp.o"
  "CMakeFiles/time_varying_test.dir/time_varying_test.cpp.o.d"
  "time_varying_test"
  "time_varying_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_varying_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
