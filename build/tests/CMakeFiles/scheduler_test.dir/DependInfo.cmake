
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/scheduler_test.cpp" "tests/CMakeFiles/scheduler_test.dir/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/scheduler_test.dir/scheduler_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/avcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/avcp_system.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/avcp_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/avcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/avcp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/avcp_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/avcp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/avcp_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/avcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
