# Empty dependencies file for city_builder_test.
# This may be replaced when dependencies are built.
