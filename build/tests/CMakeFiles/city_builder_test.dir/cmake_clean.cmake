file(REMOVE_RECURSE
  "CMakeFiles/city_builder_test.dir/city_builder_test.cpp.o"
  "CMakeFiles/city_builder_test.dir/city_builder_test.cpp.o.d"
  "city_builder_test"
  "city_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
