file(REMOVE_RECURSE
  "CMakeFiles/sensor_model_test.dir/sensor_model_test.cpp.o"
  "CMakeFiles/sensor_model_test.dir/sensor_model_test.cpp.o.d"
  "sensor_model_test"
  "sensor_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
