# Empty dependencies file for sensor_model_test.
# This may be replaced when dependencies are built.
