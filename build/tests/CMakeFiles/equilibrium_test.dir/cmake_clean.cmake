file(REMOVE_RECURSE
  "CMakeFiles/equilibrium_test.dir/equilibrium_test.cpp.o"
  "CMakeFiles/equilibrium_test.dir/equilibrium_test.cpp.o.d"
  "equilibrium_test"
  "equilibrium_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equilibrium_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
