# Empty dependencies file for agent_sim_test.
# This may be replaced when dependencies are built.
