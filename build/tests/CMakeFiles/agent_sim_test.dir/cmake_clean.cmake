file(REMOVE_RECURSE
  "CMakeFiles/agent_sim_test.dir/agent_sim_test.cpp.o"
  "CMakeFiles/agent_sim_test.dir/agent_sim_test.cpp.o.d"
  "agent_sim_test"
  "agent_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
