file(REMOVE_RECURSE
  "CMakeFiles/fds_test.dir/fds_test.cpp.o"
  "CMakeFiles/fds_test.dir/fds_test.cpp.o.d"
  "fds_test"
  "fds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
