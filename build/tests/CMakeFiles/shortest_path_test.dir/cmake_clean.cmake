file(REMOVE_RECURSE
  "CMakeFiles/shortest_path_test.dir/shortest_path_test.cpp.o"
  "CMakeFiles/shortest_path_test.dir/shortest_path_test.cpp.o.d"
  "shortest_path_test"
  "shortest_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shortest_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
