file(REMOVE_RECURSE
  "CMakeFiles/road_graph_test.dir/road_graph_test.cpp.o"
  "CMakeFiles/road_graph_test.dir/road_graph_test.cpp.o.d"
  "road_graph_test"
  "road_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
