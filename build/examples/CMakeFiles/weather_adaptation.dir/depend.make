# Empty dependencies file for weather_adaptation.
# This may be replaced when dependencies are built.
