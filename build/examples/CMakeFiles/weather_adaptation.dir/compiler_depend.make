# Empty compiler generated dependencies file for weather_adaptation.
# This may be replaced when dependencies are built.
