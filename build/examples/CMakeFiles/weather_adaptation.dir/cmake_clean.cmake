file(REMOVE_RECURSE
  "CMakeFiles/weather_adaptation.dir/weather_adaptation.cpp.o"
  "CMakeFiles/weather_adaptation.dir/weather_adaptation.cpp.o.d"
  "weather_adaptation"
  "weather_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
