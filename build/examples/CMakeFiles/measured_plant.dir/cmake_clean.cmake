file(REMOVE_RECURSE
  "CMakeFiles/measured_plant.dir/measured_plant.cpp.o"
  "CMakeFiles/measured_plant.dir/measured_plant.cpp.o.d"
  "measured_plant"
  "measured_plant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measured_plant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
