# Empty dependencies file for measured_plant.
# This may be replaced when dependencies are built.
