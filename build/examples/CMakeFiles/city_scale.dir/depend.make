# Empty dependencies file for city_scale.
# This may be replaced when dependencies are built.
