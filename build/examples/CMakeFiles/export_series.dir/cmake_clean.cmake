file(REMOVE_RECURSE
  "CMakeFiles/export_series.dir/export_series.cpp.o"
  "CMakeFiles/export_series.dir/export_series.cpp.o.d"
  "export_series"
  "export_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
