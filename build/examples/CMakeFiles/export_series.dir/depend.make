# Empty dependencies file for export_series.
# This may be replaced when dependencies are built.
