file(REMOVE_RECURSE
  "CMakeFiles/custom_sensors.dir/custom_sensors.cpp.o"
  "CMakeFiles/custom_sensors.dir/custom_sensors.cpp.o.d"
  "custom_sensors"
  "custom_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
