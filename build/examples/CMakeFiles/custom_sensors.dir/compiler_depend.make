# Empty compiler generated dependencies file for custom_sensors.
# This may be replaced when dependencies are built.
